#ifndef DELTAMON_OBS_WAVE_RECORDER_H_
#define DELTAMON_OBS_WAVE_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/tuple.h"
#include "obs/json.h"
#include "obs/metrics.h"  // DELTAMON_OBS_ENABLED

/// --- Wave capture (black-box recorder) --------------------------------------
///
/// When wave capture is enabled (`set wave_capture on;`), the rule manager
/// snapshots every check-phase propagation round: the influent
/// base-relation Δ-sets it consumed, the engine settings it ran with
/// (threads, kernels), the net root Δ-sets it produced, and the rule
/// firings that followed. The last K waves live in a bounded ring served
/// by /debug/waves and dumped to a `deltamon.wave.v1` file by
/// `dump waves "path";` — which tools/deltamon-replay re-executes against
/// a rebuilt engine, asserting bit-identical outcomes (the deterministic
/// black-box recorder: docs/observability.md).
///
/// Rows are stored as real Tuples (the obs layer sits above common) and
/// serialized as typed cells, so the file round-trips every Value kind —
/// including doubles (%.17g) and object ids — exactly.

namespace deltamon::obs {

/// One Value as a typed JSON cell: {"t": "null"|"b"|"i"|"d"|"s"|"o",
/// "v": ..., ["type": TypeId for "o"]}.
Json ValueToJson(const Value& v);
Result<Value> ValueFromJson(const Json& j);

/// A Tuple as an array of typed cells.
Json TupleToJson(const Tuple& t);
Result<Tuple> TupleFromJson(const Json& j);

/// Δ-set of one relation, rows sorted (Tuple::operator<) for
/// deterministic serialization. Relations are carried by name: the file
/// must survive a rebuild in which RelationIds differ.
struct WaveRelationDelta {
  std::string relation;
  std::vector<Tuple> plus;
  std::vector<Tuple> minus;

  bool operator==(const WaveRelationDelta& other) const {
    return relation == other.relation && plus == other.plus &&
           minus == other.minus;
  }

  Json ToJson() const;
  static Result<WaveRelationDelta> FromJson(const Json& j);
};

/// One captured propagation round of a check phase.
struct WaveRecord {
  uint64_t seq = 0;  ///< assigned by WaveRecorder::Record; 1-based
  uint64_t trace_id = 0;
  uint64_t version = 0;  ///< commit version; 0 outside the txn manager
  uint64_t round = 0;    ///< 1-based round within the check phase; rounds
                         ///< past 1 consume deltas produced by rule actions
  uint64_t threads = 1;
  bool kernels = true;
  /// Influent base-relation Δ-sets the round consumed, sorted by name.
  std::vector<WaveRelationDelta> influents;
  /// Net root (monitored condition) Δ-sets the round produced, sorted by
  /// name; relations with empty nets are omitted.
  std::vector<WaveRelationDelta> roots;
  /// Rendered firings of the round, in execution order: "rule instance".
  std::vector<std::string> firings;

  Json ToJson() const;
  static Result<WaveRecord> FromJson(const Json& j);

  /// The replay-checked subset — round, influents, roots, firings — as
  /// JSON. Excludes identity stamps (seq, trace_id, version) and settings
  /// (threads, kernels): a replay under different settings must still
  /// produce a byte-identical outcome document.
  Json OutcomeJson() const;
};

/// Bounded ring of the most recent waves plus the enable flag; same
/// locking discipline as the FlightRecorder (appends happen once per
/// propagation round, far off the per-tuple hot path).
class WaveRecorder {
 public:
  explicit WaveRecorder(size_t capacity = 64) : capacity_(capacity) {}
  WaveRecorder(const WaveRecorder&) = delete;
  WaveRecorder& operator=(const WaveRecorder&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Appends, assigning record.seq (monotonic, survives ring overflow).
  void Record(WaveRecord record);
  std::vector<WaveRecord> Snapshot() const;
  uint64_t total_records() const {
    return total_records_.load(std::memory_order_relaxed);
  }
  uint64_t dropped_records() const {
    return dropped_records_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return capacity_; }
  void Clear();

 private:
  const size_t capacity_;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::atomic<uint64_t> total_records_{0};
  std::atomic<uint64_t> dropped_records_{0};
  std::deque<WaveRecord> records_;
};

/// Compiled-out twin; /debug/waves keeps serving valid empty documents.
struct NullWaveRecorder {
  bool enabled() const { return false; }
  void set_enabled(bool) {}
  void Record(const WaveRecord&) {}
  std::vector<WaveRecord> Snapshot() const { return {}; }
  uint64_t total_records() const { return 0; }
  uint64_t dropped_records() const { return 0; }
  size_t capacity() const { return 0; }
  void Clear() {}
};

#if DELTAMON_OBS_ENABLED
using WaveLog = WaveRecorder;
#else
using WaveLog = NullWaveRecorder;
#endif

/// The process-wide recorder behind `dump waves` and /debug/waves.
WaveLog& GlobalWaveRecorder();

/// The `deltamon.wave.v1` document: {schema, enabled?, capacity,
/// total_records, dropped_records, waves: [WaveRecord.ToJson()...]}.
/// Also the /debug/waves document.
Json WaveFileJson(const std::vector<WaveRecord>& records, bool enabled,
                  size_t capacity, uint64_t total, uint64_t dropped);

/// Strict loader: parses, checks schema == "deltamon.wave.v1", decodes
/// every wave. Used by deltamon-replay.
Result<std::vector<WaveRecord>> ParseWaveFile(const std::string& text);

}  // namespace deltamon::obs

#endif  // DELTAMON_OBS_WAVE_RECORDER_H_
