#ifndef DELTAMON_OBS_JSON_H_
#define DELTAMON_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace deltamon::obs {

/// A minimal JSON document model — just enough for the bench reports and
/// the PROFILE/SHOW METRICS machinery: construction, serialization, and a
/// strict parser for the round-trip schema tests. No external dependency
/// (the container image carries none), no clever performance.
class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  Json(int64_t i) : kind_(Kind::kInt), int_(i) {}
  Json(uint64_t i) : kind_(Kind::kInt), int_(static_cast<int64_t>(i)) {}
  Json(int i) : kind_(Kind::kInt), int_(i) {}
  Json(double d) : kind_(Kind::kDouble), double_(d) {}
  Json(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  Json(const char* s) : kind_(Kind::kString), string_(s) {}

  static Json Array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  int64_t as_int() const {
    return kind_ == Kind::kDouble ? static_cast<int64_t>(double_) : int_;
  }
  double as_double() const {
    return kind_ == Kind::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& as_string() const { return string_; }

  /// --- Array access ------------------------------------------------------
  size_t size() const {
    return kind_ == Kind::kArray ? array_.size() : members_.size();
  }
  void Append(Json value) { array_.push_back(std::move(value)); }
  const Json& at(size_t i) const { return array_.at(i); }
  const std::vector<Json>& array_items() const { return array_; }

  /// --- Object access -----------------------------------------------------
  bool contains(const std::string& key) const;
  /// Null reference semantics are too easy to misuse; Get returns nullptr
  /// for a missing key instead.
  const Json* Get(const std::string& key) const;
  void Set(const std::string& key, Json value);
  /// Insertion-ordered members, so emitted documents read top-down.
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  /// Serializes with two-space indentation (stable key order = insertion
  /// order), ending in a newline at the top level.
  std::string Dump() const;

  /// Strict parser (UTF-8 passthrough, \uXXXX escapes decoded as-is into
  /// \u-escaped form is NOT supported — reports are ASCII). Fails with
  /// ParseError on trailing garbage.
  static Result<Json> Parse(const std::string& text);

 private:
  void DumpTo(std::string* out, int indent) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace deltamon::obs

#endif  // DELTAMON_OBS_JSON_H_
