#ifndef DELTAMON_OBS_PROVENANCE_H_
#define DELTAMON_OBS_PROVENANCE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"  // DELTAMON_OBS_ENABLED

/// --- Firing provenance ------------------------------------------------------
///
/// "Why did this rule fire?" — the flight-recorder answer. When provenance
/// is enabled (`set provenance on;`), the rule manager captures row-level
/// delta lineage during propagation (core::WaveLineage) and, for every
/// rule firing, records which condition instances fired, their full
/// lineage trees down to the originating base-relation Δ-rows, and the
/// request/commit identity of the wave (trace_id, commit version). The
/// records land in a bounded ring served by `explain firing`,
/// `show provenance;` and the admin /debug/provenance endpoint.
///
/// The obs layer sits below storage, so records carry *rendered* data:
/// relation names, Tuple::ToString rows, and pre-built lineage Json — the
/// rules layer does the rendering while it still has the catalog.

namespace deltamon::obs {

/// One rule firing: the rule, the wave identity, and per captured
/// instance its lineage tree. Lineage capture is capped (see
/// kMaxLineageInstances in the rules layer); captured_instances <
/// total_instances announces the truncation.
struct FiringRecord {
  uint64_t seq = 0;  ///< assigned by ProvenanceLog::Record; 1-based
  uint64_t trace_id = 0;
  /// Commit version of the wave that triggered the firing; 0 when the
  /// check phase ran outside the transaction manager.
  uint64_t version = 0;
  std::string rule;
  uint64_t round = 0;  ///< 1-based incremental round within the check phase
  /// Rendered condition instances, in the deterministic firing order
  /// (SortedTuples of the pending Δ+).
  std::vector<std::string> instances;
  /// Lineage trees (WaveLineage::Export) of the first captured_instances
  /// instances, parallel to `instances`.
  Json lineage = Json::Array();
  uint64_t captured_instances = 0;
  uint64_t total_instances = 0;

  Json ToJson() const;
};

/// Bounded ring of the most recent firings, plus the enable flag the
/// executor checks before arming lineage capture (one relaxed load on the
/// no-provenance path; the per-row evaluation cost only exists while
/// enabled).
class ProvenanceLog {
 public:
  explicit ProvenanceLog(size_t capacity = 128) : capacity_(capacity) {}
  ProvenanceLog(const ProvenanceLog&) = delete;
  ProvenanceLog& operator=(const ProvenanceLog&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Appends, assigning record.seq (monotonic, survives ring overflow).
  void Record(FiringRecord record);
  /// Oldest-to-newest copy of the ring.
  std::vector<FiringRecord> Snapshot() const;
  uint64_t total_records() const {
    return total_records_.load(std::memory_order_relaxed);
  }
  uint64_t dropped_records() const {
    return dropped_records_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return capacity_; }
  void Clear();

 private:
  const size_t capacity_;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::atomic<uint64_t> total_records_{0};
  std::atomic<uint64_t> dropped_records_{0};
  std::deque<FiringRecord> records_;
};

/// Compiled-out twin: enabled() is constant-false, so every capture site
/// folds away and OBS=OFF builds carry no ring — while /debug/provenance
/// still serves a valid empty document.
struct NullProvenanceLog {
  bool enabled() const { return false; }
  void set_enabled(bool) {}
  void Record(const FiringRecord&) {}
  std::vector<FiringRecord> Snapshot() const { return {}; }
  uint64_t total_records() const { return 0; }
  uint64_t dropped_records() const { return 0; }
  size_t capacity() const { return 0; }
  void Clear() {}
};

#if DELTAMON_OBS_ENABLED
using FiringProvenance = ProvenanceLog;
#else
using FiringProvenance = NullProvenanceLog;
#endif

/// The process-wide provenance log behind `explain firing` and
/// /debug/provenance.
FiringProvenance& GlobalProvenanceLog();

/// The /debug/provenance document: {enabled, capacity, total_records,
/// dropped_records, firings: [FiringRecord.ToJson()...]}.
Json ProvenanceJson(const std::vector<FiringRecord>& records, bool enabled,
                    size_t capacity, uint64_t total, uint64_t dropped);

/// `show provenance;` report: one block per firing, newest last.
std::string FormatProvenance(const std::vector<FiringRecord>& records,
                             bool enabled, uint64_t total, uint64_t dropped);

}  // namespace deltamon::obs

#endif  // DELTAMON_OBS_PROVENANCE_H_
