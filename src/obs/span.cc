#include "obs/span.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <unordered_map>

#include "obs/report.h"

namespace deltamon::obs {

namespace {

std::atomic<uint64_t> g_next_span_id{1};
std::atomic<int64_t> g_next_thread_index{1};
std::atomic<uint64_t> g_current_trace_id{0};

thread_local uint64_t t_current_span = 0;
thread_local int64_t t_thread_index = 0;

int64_t ThreadIndex() {
  if (t_thread_index == 0) {
    t_thread_index = g_next_thread_index.fetch_add(1,
                                                   std::memory_order_relaxed);
  }
  return t_thread_index;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

constexpr const char* kSpanIdKey = "span_id";
constexpr const char* kParentKey = "parent_id";
constexpr const char* kThreadKey = "thread";
constexpr const char* kStartKey = "start_ns";
constexpr const char* kDurKey = "dur_ns";

bool IsBookkeepingField(const std::string& key) {
  return key == kSpanIdKey || key == kParentKey || key == kThreadKey ||
         key == kStartKey || key == kDurKey;
}

}  // namespace

Span::Span(const char* category, std::string name) {
  if (!TraceEnabled()) return;
  active_ = true;
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_ = t_current_span;
  t_current_span = id_;
  trace_id_ = g_current_trace_id.load(std::memory_order_relaxed);
  category_ = category;
  name_ = std::move(name);
  start_ns_ = NowNs();
}

Span::~Span() {
  if (!active_) return;
  uint64_t end_ns = NowNs();
  t_current_span = parent_;
  TraceEvent event;
  event.category = category_;
  event.name = std::move(name_);
  event.fields.reserve(fields_.size() + 5);
  event.fields.emplace_back(kSpanIdKey, static_cast<int64_t>(id_));
  event.fields.emplace_back(kParentKey, static_cast<int64_t>(parent_));
  event.fields.emplace_back(kThreadKey, ThreadIndex());
  event.fields.emplace_back(kStartKey, static_cast<int64_t>(start_ns_));
  event.fields.emplace_back(kDurKey,
                            static_cast<int64_t>(end_ns - start_ns_));
  if (trace_id_ != 0) {
    event.fields.emplace_back("trace_id", static_cast<int64_t>(trace_id_));
  }
  for (auto& field : fields_) event.fields.push_back(std::move(field));
  EmitTrace(event);
}

void Span::AddField(std::string key, int64_t value) {
  if (!active_) return;
  fields_.emplace_back(std::move(key), value);
}

void Span::SetName(std::string name) {
  if (!active_) return;
  name_ = std::move(name);
}

uint64_t Span::CurrentId() { return t_current_span; }

#if DELTAMON_OBS_ENABLED
ScopedTraceId::ScopedTraceId(uint64_t trace_id)
    : saved_(g_current_trace_id.exchange(trace_id,
                                         std::memory_order_relaxed)) {}

ScopedTraceId::~ScopedTraceId() {
  g_current_trace_id.store(saved_, std::memory_order_relaxed);
}

uint64_t CurrentTraceId() {
  return g_current_trace_id.load(std::memory_order_relaxed);
}
#endif

bool IsSpanEvent(const TraceEvent& event) {
  bool has_id = false;
  bool has_dur = false;
  for (const auto& [key, value] : event.fields) {
    (void)value;
    if (key == kSpanIdKey) has_id = true;
    if (key == kDurKey) has_dur = true;
  }
  return has_id && has_dur;
}

int64_t SpanField(const TraceEvent& event, const char* key, int64_t fallback) {
  for (const auto& [k, v] : event.fields) {
    if (k == key) return v;
  }
  return fallback;
}

Json ChromeTraceJson(const std::deque<TraceEvent>& events) {
  // Normalize timestamps so the trace starts near zero — Perfetto handles
  // raw steady_clock values, but small numbers read better.
  int64_t min_start = 0;
  bool any = false;
  for (const TraceEvent& e : events) {
    if (!IsSpanEvent(e)) continue;
    int64_t start = SpanField(e, kStartKey, 0);
    if (!any || start < min_start) min_start = start;
    any = true;
  }

  Json trace_events = Json::Array();
  for (const TraceEvent& e : events) {
    if (!IsSpanEvent(e)) continue;
    Json out = Json::Object();
    out.Set("name", e.name);
    out.Set("cat", e.category);
    out.Set("ph", "X");
    out.Set("ts",
            static_cast<double>(SpanField(e, kStartKey, 0) - min_start) /
                1000.0);
    out.Set("dur", static_cast<double>(SpanField(e, kDurKey, 0)) / 1000.0);
    out.Set("pid", 1);
    out.Set("tid", SpanField(e, kThreadKey, 0));
    Json args = Json::Object();
    args.Set(kSpanIdKey, SpanField(e, kSpanIdKey, 0));
    args.Set(kParentKey, SpanField(e, kParentKey, 0));
    for (const auto& [key, value] : e.fields) {
      if (!IsBookkeepingField(key)) args.Set(key, value);
    }
    out.Set("args", std::move(args));
    trace_events.Append(std::move(out));
  }

  Json doc = Json::Object();
  doc.Set("traceEvents", std::move(trace_events));
  doc.Set("displayTimeUnit", "ms");
  return doc;
}

Status WriteChromeTrace(const std::deque<TraceEvent>& events,
                        const std::string& path) {
  return WriteTextFile(path, ChromeTraceJson(events).Dump());
}

std::string FormatSpanTree(const std::deque<TraceEvent>& events) {
  struct Record {
    const TraceEvent* event = nullptr;
    int64_t start = 0;
    std::vector<size_t> children;  // indexes into records, start order
  };
  std::vector<Record> records;
  std::unordered_map<int64_t, size_t> by_id;
  for (const TraceEvent& e : events) {
    if (!IsSpanEvent(e)) continue;
    Record r;
    r.event = &e;
    r.start = SpanField(e, kStartKey, 0);
    by_id.emplace(SpanField(e, kSpanIdKey, 0), records.size());
    records.push_back(std::move(r));
  }
  if (records.empty()) return "(no spans recorded)\n";

  std::vector<size_t> roots;
  for (size_t i = 0; i < records.size(); ++i) {
    int64_t parent = SpanField(*records[i].event, kParentKey, 0);
    auto it = by_id.find(parent);
    if (parent != 0 && it != by_id.end()) {
      records[it->second].children.push_back(i);
    } else {
      // Parent dropped from the ring or never recorded: promote to root.
      roots.push_back(i);
    }
  }
  auto by_start = [&records](size_t a, size_t b) {
    return records[a].start < records[b].start;
  };
  std::sort(roots.begin(), roots.end(), by_start);
  for (Record& r : records) {
    std::sort(r.children.begin(), r.children.end(), by_start);
  }

  std::string out;
  // Explicit stack (not recursion): ring contents are adversarial.
  std::vector<std::pair<size_t, int>> stack;
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.emplace_back(*it, 0);
  }
  while (!stack.empty()) {
    auto [idx, depth] = stack.back();
    stack.pop_back();
    const Record& r = records[idx];
    const TraceEvent& e = *r.event;
    out.append(static_cast<size_t>(depth) * 2, ' ');
    out += e.category;
    out += ".";
    out += e.name;
    char buf[48];
    std::snprintf(buf, sizeof(buf), " %.3f ms",
                  static_cast<double>(SpanField(e, kDurKey, 0)) / 1e6);
    out += buf;
    std::string extras;
    for (const auto& [key, value] : e.fields) {
      if (IsBookkeepingField(key)) continue;
      if (!extras.empty()) extras += ", ";
      extras += key + "=" + std::to_string(value);
    }
    if (!extras.empty()) out += " {" + extras + "}";
    out += "\n";
    for (auto it = r.children.rbegin(); it != r.children.rend(); ++it) {
      stack.emplace_back(*it, depth + 1);
    }
  }
  return out;
}

}  // namespace deltamon::obs
