#include "obs/report.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace deltamon::obs {

namespace {

Json HistogramJson(const MetricsSnapshot::HistogramSample& h) {
  Json out = Json::Object();
  out.Set("count", h.count);
  out.Set("sum", h.sum);
  out.Set("min", h.min);
  out.Set("max", h.max);
  out.Set("p50", h.p50);
  out.Set("p95", h.p95);
  out.Set("p99", h.p99);
  Json buckets = Json::Array();
  for (const auto& [upper, n] : h.buckets) {
    Json pair = Json::Array();
    pair.Append(upper);
    pair.Append(n);
    buckets.Append(std::move(pair));
  }
  out.Set("buckets", std::move(buckets));
  return out;
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted names mangle
/// cleanly with dots (and anything else) becoming underscores.
std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

Status ExpectMember(const Json& obj, const char* key, bool (Json::*pred)()
                        const, const char* what) {
  const Json* v = obj.Get(key);
  if (v == nullptr) {
    return Status::InvalidArgument(std::string("missing member '") + key +
                                   "'");
  }
  if (!(v->*pred)()) {
    return Status::InvalidArgument(std::string("member '") + key +
                                   "' is not " + what);
  }
  return Status::OK();
}

Status ExpectInt(const Json& obj, const char* key) {
  return ExpectMember(obj, key, &Json::is_int, "an integer");
}

/// Stamped at static initialization, close enough to process start for the
/// restart-detection gauge.
const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();

}  // namespace

Json SnapshotToJson(const MetricsSnapshot& snapshot) {
  Json counters = Json::Object();
  for (const auto& [name, value] : snapshot.counters) {
    counters.Set(name, value);
  }
  Json gauges = Json::Object();
  for (const auto& [name, value] : snapshot.gauges) gauges.Set(name, value);
  Json histograms = Json::Object();
  for (const auto& [name, h] : snapshot.histograms) {
    histograms.Set(name, HistogramJson(h));
  }
  Json out = Json::Object();
  out.Set("counters", std::move(counters));
  out.Set("gauges", std::move(gauges));
  out.Set("histograms", std::move(histograms));
  return out;
}

std::string FormatSnapshot(const MetricsSnapshot& snapshot) {
  std::string out;
  char line[256];
  for (const auto& [name, value] : snapshot.counters) {
    std::snprintf(line, sizeof(line), "  %-48s %12llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += line;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::snprintf(line, sizeof(line), "  %-48s %12lld\n", name.c_str(),
                  static_cast<long long>(value));
    out += line;
  }
  for (const auto& [name, h] : snapshot.histograms) {
    std::snprintf(line, sizeof(line),
                  "  %-48s count=%llu sum=%llu p50=%llu p95=%llu p99=%llu\n",
                  name.c_str(), static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.sum),
                  static_cast<unsigned long long>(h.p50),
                  static_cast<unsigned long long>(h.p95),
                  static_cast<unsigned long long>(h.p99));
    out += line;
  }
  if (out.empty()) out = "  (no metrics recorded)\n";
  return out;
}

std::string FormatPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  char line[320];
  for (const auto& [name, value] : snapshot.counters) {
    std::string n = PrometheusName(name);
    out += "# TYPE " + n + " counter\n";
    std::snprintf(line, sizeof(line), "%s %llu\n", n.c_str(),
                  static_cast<unsigned long long>(value));
    out += line;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::string n = PrometheusName(name);
    out += "# TYPE " + n + " gauge\n";
    std::snprintf(line, sizeof(line), "%s %lld\n", n.c_str(),
                  static_cast<long long>(value));
    out += line;
  }
  for (const auto& [name, h] : snapshot.histograms) {
    std::string n = PrometheusName(name);
    out += "# TYPE " + n + " histogram\n";
    uint64_t cumulative = 0;
    for (const auto& [upper, count] : h.buckets) {
      cumulative += count;
      // The last log2 bucket's bound is UINT64_MAX; +Inf below covers it.
      if (upper == UINT64_MAX) continue;
      std::snprintf(line, sizeof(line), "%s_bucket{le=\"%llu\"} %llu\n",
                    n.c_str(), static_cast<unsigned long long>(upper),
                    static_cast<unsigned long long>(cumulative));
      out += line;
    }
    std::snprintf(line, sizeof(line), "%s_bucket{le=\"+Inf\"} %llu\n",
                  n.c_str(), static_cast<unsigned long long>(h.count));
    out += line;
    std::snprintf(line, sizeof(line), "%s_sum %llu\n", n.c_str(),
                  static_cast<unsigned long long>(h.sum));
    out += line;
    std::snprintf(line, sizeof(line), "%s_count %llu\n", n.c_str(),
                  static_cast<unsigned long long>(h.count));
    out += line;
  }
  // Exporter identity, present even over an empty registry: build_info is
  // the standard constant 1-valued gauge carrying build labels (mixed-build
  // fleets show up as multiple label sets), and uptime lets dashboards
  // detect restarts. Uptime is the one time-varying line in the document;
  // byte-identity comparisons strip it (tests/net/metrics_identity_test.cc).
#ifdef DELTAMON_VERSION
  const char* version = DELTAMON_VERSION;
#else
  const char* version = "unknown";
#endif
  out += "# TYPE deltamon_build_info gauge\n";
  out += "deltamon_build_info{version=\"" + std::string(version) +
         "\",git_sha=\"" + GitSha() + "\",obs=\"" +
         (DELTAMON_OBS_ENABLED ? "on" : "off") + "\"} 1\n";
  const double uptime =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - g_process_start)
          .count();
  out += "# TYPE process_uptime_seconds gauge\n";
  std::snprintf(line, sizeof(line), "process_uptime_seconds %.3f\n", uptime);
  out += line;
  return out;
}

std::string GitSha() {
  if (const char* env = std::getenv("DELTAMON_GIT_SHA"); env != nullptr) {
    return env;
  }
#ifdef DELTAMON_GIT_SHA
  return DELTAMON_GIT_SHA;
#else
  return "unknown";
#endif
}

Json EnvironmentJson() {
  Json env = Json::Object();
#if defined(__clang__)
  env.Set("compiler", std::string("clang ") + __clang_version__);
#elif defined(__GNUC__)
  env.Set("compiler", std::string("gcc ") + __VERSION__);
#else
  env.Set("compiler", "unknown");
#endif
#ifdef DELTAMON_BUILD_TYPE
  env.Set("build_type", DELTAMON_BUILD_TYPE);
#elif defined(NDEBUG)
  env.Set("build_type", "Release");
#else
  env.Set("build_type", "Debug");
#endif
  env.Set("obs_compiled_in", static_cast<bool>(DELTAMON_OBS_ENABLED));
  env.Set("cpu_count",
          static_cast<int64_t>(std::thread::hardware_concurrency()));
  env.Set("timestamp_unix",
          static_cast<int64_t>(
              std::chrono::duration_cast<std::chrono::seconds>(
                  std::chrono::system_clock::now().time_since_epoch())
                  .count()));
  return env;
}

Json BuildBenchReport(const std::string& name, Json benchmarks,
                      uint64_t wall_time_ns,
                      const MetricsSnapshot& snapshot) {
  Json summary = Json::Object();
  summary.Set("wall_time_ns", wall_time_ns);
  summary.Set("differentials_executed",
              snapshot.CounterOr("propagator.differentials_executed", 0));
  summary.Set("differentials_skipped",
              snapshot.CounterOr("propagator.differentials_skipped", 0));
  summary.Set("tuples_propagated",
              snapshot.CounterOr("propagator.tuples_propagated", 0));

  Json report = Json::Object();
  report.Set("schema", kBenchSchema);
  report.Set("name", name);
  report.Set("git_sha", GitSha());
  report.Set("environment", EnvironmentJson());
  report.Set("summary", std::move(summary));
  report.Set("benchmarks", std::move(benchmarks));
  report.Set("metrics", SnapshotToJson(snapshot));
  return report;
}

Status ValidateBenchReport(const Json& report) {
  if (!report.is_object()) {
    return Status::InvalidArgument("report is not a JSON object");
  }
  DELTAMON_RETURN_IF_ERROR(
      ExpectMember(report, "schema", &Json::is_string, "a string"));
  const std::string& schema = report.Get("schema")->as_string();
  if (schema != kBenchSchema && schema != kBenchSchemaV1) {
    return Status::InvalidArgument("unknown schema '" + schema + "'");
  }
  DELTAMON_RETURN_IF_ERROR(
      ExpectMember(report, "name", &Json::is_string, "a string"));
  DELTAMON_RETURN_IF_ERROR(
      ExpectMember(report, "git_sha", &Json::is_string, "a string"));
  DELTAMON_RETURN_IF_ERROR(
      ExpectMember(report, "environment", &Json::is_object, "an object"));
  const Json& env = *report.Get("environment");
  DELTAMON_RETURN_IF_ERROR(
      ExpectMember(env, "compiler", &Json::is_string, "a string"));
  DELTAMON_RETURN_IF_ERROR(
      ExpectMember(env, "build_type", &Json::is_string, "a string"));
  DELTAMON_RETURN_IF_ERROR(
      ExpectMember(env, "obs_compiled_in", &Json::is_bool, "a bool"));
  DELTAMON_RETURN_IF_ERROR(ExpectInt(env, "cpu_count"));
  DELTAMON_RETURN_IF_ERROR(ExpectInt(env, "timestamp_unix"));

  DELTAMON_RETURN_IF_ERROR(
      ExpectMember(report, "summary", &Json::is_object, "an object"));
  const Json& summary = *report.Get("summary");
  for (const char* key : {"wall_time_ns", "differentials_executed",
                          "differentials_skipped", "tuples_propagated"}) {
    DELTAMON_RETURN_IF_ERROR(ExpectInt(summary, key));
  }

  DELTAMON_RETURN_IF_ERROR(
      ExpectMember(report, "benchmarks", &Json::is_array, "an array"));
  for (const Json& b : report.Get("benchmarks")->array_items()) {
    if (!b.is_object()) {
      return Status::InvalidArgument("benchmarks entry is not an object");
    }
    DELTAMON_RETURN_IF_ERROR(
        ExpectMember(b, "name", &Json::is_string, "a string"));
    DELTAMON_RETURN_IF_ERROR(ExpectInt(b, "iterations"));
    DELTAMON_RETURN_IF_ERROR(
        ExpectMember(b, "real_time_ns", &Json::is_number, "a number"));
    DELTAMON_RETURN_IF_ERROR(
        ExpectMember(b, "counters", &Json::is_object, "an object"));
  }

  DELTAMON_RETURN_IF_ERROR(
      ExpectMember(report, "metrics", &Json::is_object, "an object"));
  const Json& metrics = *report.Get("metrics");
  for (const char* key : {"counters", "gauges", "histograms"}) {
    DELTAMON_RETURN_IF_ERROR(
        ExpectMember(metrics, key, &Json::is_object, "an object"));
  }
  for (const auto& [name, h] : metrics.Get("histograms")->members()) {
    if (!h.is_object()) {
      return Status::InvalidArgument("histogram '" + name +
                                     "' is not an object");
    }
    for (const char* key :
         {"count", "sum", "min", "max", "p50", "p95", "p99"}) {
      DELTAMON_RETURN_IF_ERROR(ExpectInt(h, key));
    }
  }
  return Status::OK();
}

Status WriteBenchReport(const Json& report, const std::string& dir) {
  DELTAMON_RETURN_IF_ERROR(ValidateBenchReport(report));
  const Json* name = report.Get("name");
  std::string path = dir.empty() ? "" : dir + "/";
  path += "BENCH_" + name->as_string() + ".json";
  return WriteTextFile(path, report.Dump());
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  int close_err = std::fclose(f);
  if (written != content.size() || close_err != 0) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

Result<std::string> ReadTextFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::NotFound("cannot open '" + path + "'");
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

}  // namespace deltamon::obs
