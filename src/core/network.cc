#include "core/network.h"

#include <algorithm>
#include <cstdio>

namespace deltamon::core {

using objectlog::Clause;
using objectlog::EvalState;
using objectlog::Literal;
using objectlog::RelationRole;

std::string PartialDifferential::Name(const Catalog& catalog) const {
  if (aggregate) {
    return "Δ" + catalog.RelationName(target) + "/Δ" +
           catalog.RelationName(influent) + " [aggregate]";
  }
  std::string out = "Δ";
  out += produces_plus ? "+" : "-";
  out += catalog.RelationName(target);
  out += "/Δ";
  out += reads_plus ? "+" : "-";
  out += catalog.RelationName(influent);
  return out;
}

namespace {

/// Recursively registers `rel` and everything below it as network nodes.
Status AddNode(RelationId rel, const objectlog::DerivedRegistry& registry,
               const Catalog& catalog, const BuildOptions& options,
               std::unordered_map<RelationId, NetworkNode>& nodes,
               std::unordered_set<RelationId>& in_progress) {
  if (nodes.contains(rel)) return Status::OK();
  NetworkNode node;
  node.relation = rel;
  // Stored and foreign functions are both leaves: their Δ-sets come from
  // the transaction log / user-injected differentials, never from
  // differencing.
  if (!catalog.IsDerived(rel)) {
    node.is_base = true;
    node.level = 0;
    nodes.emplace(rel, std::move(node));
    return Status::OK();
  }
  in_progress.insert(rel);
  // Aggregate views (§8 extension): a single child — the source relation.
  if (const objectlog::AggregateDef* agg = registry.GetAggregate(rel)) {
    node.aggregate = agg;
    if (in_progress.contains(agg->source)) {
      return Status::Unimplemented(
          "recursion through an aggregate is not stratifiable");
    }
    DELTAMON_RETURN_IF_ERROR(AddNode(agg->source, registry, catalog, options,
                                     nodes, in_progress));
    node.level = nodes.at(agg->source).level + 1;
    in_progress.erase(rel);
    nodes.emplace(rel, std::move(node));
    return Status::OK();
  }
  DELTAMON_ASSIGN_OR_RETURN(node.clauses,
                            registry.Expand(rel, options.keep));
  int max_child = -1;
  for (const Clause& clause : node.clauses) {
    for (const Literal& lit : clause.body) {
      if (lit.kind != Literal::Kind::kRelation) continue;
      // Linear (self-)recursion: a self-reference is a back edge, handled
      // by fixpoint iteration at this node; it does not affect the level.
      // Mutual recursion has no valid breadth-first level assignment.
      if (lit.relation == rel) {
        if (lit.negated) {
          return Status::Unimplemented(
              "recursion through negation is not stratifiable");
        }
        continue;
      }
      if (in_progress.contains(lit.relation)) {
        return Status::Unimplemented(
            "only linear self-recursion is supported (mutually recursive "
            "relations have no bottom-up level order)");
      }
      DELTAMON_RETURN_IF_ERROR(AddNode(lit.relation, registry, catalog,
                                       options, nodes, in_progress));
      max_child = std::max(max_child, nodes.at(lit.relation).level);
    }
  }
  node.level = max_child + 1;
  in_progress.erase(rel);
  nodes.emplace(rel, std::move(node));
  return Status::OK();
}

}  // namespace

Result<PropagationNetwork> PropagationNetwork::Build(
    const std::vector<RootSpec>& roots,
    const objectlog::DerivedRegistry& registry, const Catalog& catalog,
    const BuildOptions& options) {
  PropagationNetwork net;
  net.roots_ = roots;

  // 1. Nodes: every relation reachable from a root through (expanded)
  // clause bodies.
  std::unordered_set<RelationId> in_progress;
  for (const RootSpec& root : roots) {
    if (!catalog.IsDerived(root.relation)) {
      return Status::InvalidArgument(
          "condition '" + catalog.RelationName(root.relation) +
          "' must be a derived relation");
    }
    DELTAMON_RETURN_IF_ERROR(AddNode(root.relation, registry, catalog,
                                     options, net.nodes_, in_progress));
  }

  // 2. Required change polarities, top-down to a fixpoint: a parent that
  // needs insertions needs Δ+ of positive occurrences and Δ− of negated
  // occurrences; dually for deletions (paper §4.4: negation swaps signs,
  // Δ(~Q) = <Δ−Q, Δ+Q>).
  for (const RootSpec& root : roots) {
    NetworkNode& node = net.nodes_.at(root.relation);
    node.needs_plus = true;
    node.needs_minus = node.needs_minus || root.needs_minus;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [rel, node] : net.nodes_) {
      if (node.is_base || (!node.needs_plus && !node.needs_minus)) continue;
      if (node.aggregate != nullptr) {
        // Any change to the aggregate value needs both sides of the
        // source's Δ-set (an insertion can lower a MIN, a deletion can
        // lower a COUNT, ...).
        NetworkNode& child = net.nodes_.at(node.aggregate->source);
        if (!child.needs_plus || !child.needs_minus) {
          child.needs_plus = true;
          child.needs_minus = true;
          changed = true;
        }
        continue;
      }
      for (const Clause& clause : node.clauses) {
        for (const Literal& lit : clause.body) {
          if (lit.kind != Literal::Kind::kRelation) continue;
          NetworkNode& child = net.nodes_.at(lit.relation);
          bool want_plus = lit.negated ? node.needs_minus : node.needs_plus;
          bool want_minus = lit.negated ? node.needs_plus : node.needs_minus;
          if (want_plus && !child.needs_plus) {
            child.needs_plus = true;
            changed = true;
          }
          if (want_minus && !child.needs_minus) {
            child.needs_minus = true;
            changed = true;
          }
        }
      }
    }
  }

  // 3. Partial differentials: for each derived node P and each relation
  // literal occurrence X in its clauses, generate
  //   - a differential producing Δ+P: substitute the occurrence by the
  //     matching Δ-side of X and evaluate the other literals in the NEW
  //     state (§4.3), and
  //   - a differential producing Δ−P: substitute by the opposite Δ-side
  //     and evaluate the other literals in the OLD state (§4.4),
  // each only when the node needs that polarity.
  for (auto& [rel, node] : net.nodes_) {
    if (node.is_base) continue;
    if (node.aggregate != nullptr) {
      PartialDifferential diff;
      diff.target = rel;
      diff.influent = node.aggregate->source;
      diff.aggregate = true;
      node.in_edges.push_back(net.differentials_.size());
      net.differentials_.push_back(std::move(diff));
      continue;
    }
    for (size_t ci = 0; ci < node.clauses.size(); ++ci) {
      const Clause& clause = node.clauses[ci];
      for (size_t li = 0; li < clause.body.size(); ++li) {
        const Literal& lit = clause.body[li];
        if (lit.kind != Literal::Kind::kRelation) continue;
        const bool positive_occurrence = !lit.negated;
        for (bool produces_plus : {true, false}) {
          if (produces_plus && !node.needs_plus) continue;
          if (!produces_plus && !node.needs_minus) continue;
          PartialDifferential diff;
          diff.target = rel;
          diff.influent = lit.relation;
          diff.produces_plus = produces_plus;
          diff.reads_plus = positive_occurrence == produces_plus;
          diff.clause_index = ci;
          diff.literal_index = li;
          diff.clause = clause;
          Literal& delta_lit = diff.clause.body[li];
          delta_lit.role = diff.reads_plus ? RelationRole::kDeltaPlus
                                           : RelationRole::kDeltaMinus;
          delta_lit.negated = false;
          // Net Δ-sets make the implied presence checks redundant: a tuple
          // in Δ−X is certainly absent from X_new, one in Δ+X absent from
          // X_old, so the substituted negated occurrence needs no residual
          // ~X test.
          EvalState other_state =
              produces_plus ? EvalState::kNew : EvalState::kOld;
          for (size_t k = 0; k < diff.clause.body.size(); ++k) {
            if (k == li) continue;
            Literal& other = diff.clause.body[k];
            if (other.kind == Literal::Kind::kRelation) {
              other.state = other_state;
            }
          }
          // The differential's name is the clause's stable identity in
          // per-literal profiles ("Δcnd/Δ+quantity"); clause_index keeps
          // multi-clause conditions apart.
          diff.clause.profile_label =
              diff.Name(catalog) + "#" + std::to_string(ci);
          node.in_edges.push_back(net.differentials_.size());
          net.differentials_.push_back(std::move(diff));
        }
      }
    }
  }

  // 4. Parents (distinct) per node, for wave-front Δ-set discarding.
  for (const PartialDifferential& diff : net.differentials_) {
    NetworkNode& child = net.nodes_.at(diff.influent);
    if (std::find(child.parents.begin(), child.parents.end(), diff.target) ==
        child.parents.end()) {
      child.parents.push_back(diff.target);
    }
  }

  // 5. Levels.
  int max_level = 0;
  for (const auto& [rel, node] : net.nodes_) {
    max_level = std::max(max_level, node.level);
  }
  net.levels_.resize(static_cast<size_t>(max_level) + 1);
  std::vector<RelationId> ids;
  ids.reserve(net.nodes_.size());
  for (const auto& [rel, node] : net.nodes_) ids.push_back(rel);
  std::sort(ids.begin(), ids.end());
  for (RelationId rel : ids) {
    net.levels_[static_cast<size_t>(net.nodes_.at(rel).level)].push_back(rel);
  }
  return net;
}

std::vector<RelationId> PropagationNetwork::BaseInfluents() const {
  std::vector<RelationId> out;
  if (levels_.empty()) return out;
  for (RelationId rel : levels_[0]) {
    if (nodes_.at(rel).is_base) out.push_back(rel);
  }
  return out;
}

std::string PropagationNetwork::ToString(const Catalog& catalog) const {
  std::string out;
  for (size_t lvl = 0; lvl < levels_.size(); ++lvl) {
    out += "level " + std::to_string(lvl) + ":";
    for (RelationId rel : levels_[lvl]) {
      const NetworkNode& node = nodes_.at(rel);
      out += " " + catalog.RelationName(rel);
      out += node.is_base ? "[base" : "[derived";
      if (node.needs_plus) out += ",+";
      if (node.needs_minus) out += ",-";
      out += "]";
    }
    out += "\n";
  }
  for (const PartialDifferential& diff : differentials_) {
    out += "  " + diff.Name(catalog);
    if (!diff.aggregate) out += ": " + diff.clause.ToString(catalog);
    out += "\n";
  }
  return out;
}

std::string PropagationNetwork::ToDot(const Catalog& catalog,
                                      RelationId root) const {
  // With a root given, keep only the subgraph feeding it: walk influent
  // edges down from the root (in_edges name each node's children).
  std::unordered_set<RelationId> keep;
  if (root != kInvalidRelationId) {
    std::vector<RelationId> frontier{root};
    while (!frontier.empty()) {
      RelationId rel = frontier.back();
      frontier.pop_back();
      if (!keep.insert(rel).second) continue;
      auto it = nodes_.find(rel);
      if (it == nodes_.end()) continue;
      for (size_t edge : it->second.in_edges) {
        frontier.push_back(differentials_[edge].influent);
      }
    }
  }
  auto kept = [&keep, root](RelationId rel) {
    return root == kInvalidRelationId || keep.contains(rel);
  };

  std::string out = "digraph propagation {\n";
  out += "  rankdir=BT;\n";
  out += "  node [shape=box, fontname=\"monospace\"];\n";
  // Emit nodes in level order so the output is deterministic.
  for (const auto& level : levels_) {
    for (RelationId rel : level) {
      if (!kept(rel)) continue;
      const NetworkNode& node = nodes_.at(rel);
      std::string label = catalog.RelationName(rel);
      label += node.is_base ? "\\n[base]" : "\\n[derived]";
      char stats[160];
      std::snprintf(stats, sizeof(stats),
                    "\\ninv=%llu consumed=%llu\\nΔ+=%llu Δ-=%llu\\n%.3f ms",
                    static_cast<unsigned long long>(node.stats.invocations),
                    static_cast<unsigned long long>(
                        node.stats.tuples_consumed),
                    static_cast<unsigned long long>(node.stats.plus_produced),
                    static_cast<unsigned long long>(
                        node.stats.minus_produced),
                    static_cast<double>(node.stats.cumulative_ns) / 1e6);
      label += stats;
      out += "  n" + std::to_string(rel) + " [label=\"" + label + "\"";
      if (node.is_base) out += ", style=filled, fillcolor=lightgrey";
      out += "];\n";
    }
  }
  for (const PartialDifferential& diff : differentials_) {
    if (!kept(diff.target) || !kept(diff.influent)) continue;
    out += "  n" + std::to_string(diff.influent) + " -> n" +
           std::to_string(diff.target);
    std::string label = diff.aggregate
                            ? std::string("agg")
                            : std::string("Δ") +
                                  (diff.reads_plus ? "+" : "-") + "→Δ" +
                                  (diff.produces_plus ? "+" : "-");
    out += " [label=\"" + label + "\"";
    if (diff.aggregate) out += ", style=dashed";
    out += "];\n";
  }
  out += "}\n";
  return out;
}

void PropagationNetwork::ResetStats() const {
  for (const auto& [rel, node] : nodes_) {
    node.stats.Reset();
    node.profile.Clear();
  }
}

}  // namespace deltamon::core
