#include "core/lineage.h"

#include <algorithm>
#include <utility>

namespace deltamon::core {

void WaveLineage::AddBase(RelationId rel, bool plus, const Tuple& row) {
  entries_[Key{rel, plus, row}].base = true;
}

void WaveLineage::AddParent(RelationId rel, bool plus, const Tuple& row,
                            Parent parent) {
  Entry& entry = entries_[Key{rel, plus, row}];
  for (const Parent& p : entry.parents) {
    if (p == parent) return;
  }
  entry.parents.push_back(std::move(parent));
}

const WaveLineage::Entry* WaveLineage::Find(RelationId rel, bool plus,
                                            const Tuple& row) const {
  auto it = entries_.find(Key{rel, plus, row});
  return it == entries_.end() ? nullptr : &it->second;
}

void WaveLineage::Merge(WaveLineage&& other) {
  for (auto& [key, entry] : other.entries_) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      entries_.emplace(key, std::move(entry));
      continue;
    }
    it->second.base = it->second.base || entry.base;
    for (Parent& p : entry.parents) {
      AddParent(key.relation, key.plus, key.row, std::move(p));
    }
  }
}

obs::Json WaveLineage::Export(RelationId rel, bool plus, const Tuple& row,
                              const Catalog& catalog,
                              size_t max_depth) const {
  std::unordered_set<Key, KeyHash> path;
  return ExportNode(Key{rel, plus, row}, catalog, 0, max_depth, &path);
}

obs::Json WaveLineage::ExportNode(const Key& key, const Catalog& catalog,
                                  size_t depth, size_t max_depth,
                                  std::unordered_set<Key, KeyHash>* path)
    const {
  obs::Json out = obs::Json::Object();
  out.Set("relation", catalog.RelationName(key.relation));
  out.Set("polarity", key.plus ? "+" : "-");
  out.Set("row", key.row.ToString());

  auto it = entries_.find(key);
  if (it == entries_.end()) {
    // Produced outside this wave's capture (e.g. lineage switched on
    // mid-stream, or a §7.2-filtered sibling): a truthful dead end.
    out.Set("unknown", true);
    return out;
  }
  const Entry& entry = it->second;
  if (entry.base) out.Set("base", true);
  if (entry.parents.empty()) return out;
  if (depth >= max_depth || !path->insert(key).second) {
    // Depth cap / self-edge cycle (recursive rules re-derive their own
    // rows): cut here rather than recurse forever.
    out.Set("truncated", true);
    return out;
  }

  // Deterministic child order: the entry map iterates in hash order, and
  // parallel merges may interleave AddParent differently per thread count,
  // so sort by a stable rendering before descending.
  std::vector<const Parent*> parents;
  parents.reserve(entry.parents.size());
  for (const Parent& p : entry.parents) parents.push_back(&p);
  std::sort(parents.begin(), parents.end(),
            [&catalog](const Parent* a, const Parent* b) {
              if (a->via != b->via) return a->via < b->via;
              const std::string an = catalog.RelationName(a->relation);
              const std::string bn = catalog.RelationName(b->relation);
              if (an != bn) return an < bn;
              if (a->plus != b->plus) return a->plus;
              return a->row.ToString() < b->row.ToString();
            });

  obs::Json inputs = obs::Json::Array();
  for (const Parent* p : parents) {
    obs::Json child = ExportNode(Key{p->relation, p->plus, p->row}, catalog,
                                 depth + 1, max_depth, path);
    child.Set("via", p->via);
    inputs.Append(std::move(child));
  }
  out.Set("inputs", std::move(inputs));
  path->erase(key);
  return out;
}

}  // namespace deltamon::core
