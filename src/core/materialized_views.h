#ifndef DELTAMON_CORE_MATERIALIZED_VIEWS_H_
#define DELTAMON_CORE_MATERIALIZED_VIEWS_H_

#include <memory>
#include <unordered_map>

#include "core/network.h"
#include "delta/delta_set.h"
#include "objectlog/registry.h"
#include "storage/database.h"

namespace deltamon::core {

/// Materialized extents of the derived nodes of a propagation network —
/// the strategy of the PF-algorithm the paper contrasts against (§2): keep
/// every intermediate view resident (indexed, incrementally maintained by
/// applying each wave's node Δ-sets) so differentials read stored tuples
/// instead of re-deriving sub-conditions.
///
/// deltamon's default is the opposite (wave-front Δ-sets only, old states
/// by logical rollback); this store exists to make the paper's space/time
/// trade-off measurable (bench/ablation_materialization) and as a
/// production option for deep, bushy networks.
///
/// Correctness requires every maintained node to receive exact deltas,
/// i.e. deletions must be propagated through the whole network — the rule
/// manager forces needs_minus when materialization is enabled.
class MaterializedViewStore {
 public:
  MaterializedViewStore() = default;
  MaterializedViewStore(const MaterializedViewStore&) = delete;
  MaterializedViewStore& operator=(const MaterializedViewStore&) = delete;

  /// Creates and populates an extent for every derived node of `network`
  /// (full evaluation; paid once per network build). When `pending_deltas`
  /// is non-null the extents are evaluated in the OLD state reconstructed
  /// by logical rollback — required when initialization happens after a
  /// transaction's updates have already been applied to the base relations
  /// (the rule manager's lazy first round), since the extents must
  /// represent the state as of the last completed maintenance.
  Status Initialize(
      const PropagationNetwork& network, const Database& db,
      const objectlog::DerivedRegistry& registry,
      const std::unordered_map<RelationId, DeltaSet>* pending_deltas =
          nullptr);

  /// The maintained extent of `rel`, or null if not materialized.
  const BaseRelation* Get(RelationId rel) const;

  /// Applies a node's wave Δ-set to its extent (insertions then
  /// deletions are irrelevant in order: Δ-sets are disjoint).
  Status Apply(RelationId rel, const DeltaSet& delta);

  /// Total tuples resident across all maintained extents — the space cost
  /// the paper's algorithm avoids.
  size_t ResidentTuples() const;

  bool empty() const { return views_.empty(); }
  void Clear() { views_.clear(); }

 private:
  std::unordered_map<RelationId, std::unique_ptr<BaseRelation>> views_;
};

}  // namespace deltamon::core

#endif  // DELTAMON_CORE_MATERIALIZED_VIEWS_H_
