#ifndef DELTAMON_CORE_NETWORK_H_
#define DELTAMON_CORE_NETWORK_H_

#include <atomic>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "objectlog/ast.h"
#include "objectlog/registry.h"
#include "obs/profile.h"
#include "storage/catalog.h"

namespace deltamon::core {

/// One generated partial differential ΔP/Δ±X (paper §4.3–4.4): a clause in
/// which one occurrence of the influent X has been replaced by a Δ-role
/// literal, and every other relation literal is annotated with the state it
/// must be evaluated in (NEW for differentials producing insertions, OLD
/// for differentials producing deletions).
struct PartialDifferential {
  RelationId target = kInvalidRelationId;    ///< the affected relation P
  RelationId influent = kInvalidRelationId;  ///< the changed relation X
  /// Aggregate edge (§8 extension): consumes both sides of ΔX and
  /// re-aggregates the affected groups in the old and new states; `clause`
  /// is unused.
  bool aggregate = false;
  /// Which side of X's Δ-set this differential consumes.
  bool reads_plus = true;
  /// Whether the produced tuples are insertions into P (Δ+P) or deletions
  /// (Δ−P).
  bool produces_plus = true;
  /// The occurrence this differential substitutes (for explainability).
  size_t clause_index = 0;
  size_t literal_index = 0;
  objectlog::Clause clause;

  /// e.g. "Δcnd/Δ+quantity" or "Δcnd/Δ-supplies [negated occurrence]".
  std::string Name(const Catalog& catalog) const;
};

/// Per-node attribution accumulated across waves: which node a wave spends
/// its work on, and in which polarity. Maintained by the propagator only
/// while instrumentation is compiled in and enabled; introspection surfaces
/// (SHOW NETWORK, ToDot) render it next to the topology.
///
/// The tallies are relaxed atomics because parallel propagation attributes
/// a node from whichever worker processed it; each counter is independently
/// exact, cross-counter consistency of a concurrent read is not promised
/// (same contract as the obs registry). Copying (for NetworkNode's map
/// residency during Build) transfers a relaxed snapshot.
struct NodeStats {
  std::atomic<uint64_t> invocations{0};  ///< waves that processed the node
  std::atomic<uint64_t> tuples_consumed{0};  ///< Δ tuples read by its diffs
  std::atomic<uint64_t> plus_produced{0};    ///< Δ+ tuples contributed
  std::atomic<uint64_t> minus_produced{0};   ///< Δ− tuples contributed
  std::atomic<uint64_t> cumulative_ns{0};  ///< wall time spent on the node

  NodeStats() = default;
  NodeStats(const NodeStats& other) { *this = other; }
  NodeStats& operator=(const NodeStats& other) {
    invocations = other.invocations.load(std::memory_order_relaxed);
    tuples_consumed = other.tuples_consumed.load(std::memory_order_relaxed);
    plus_produced = other.plus_produced.load(std::memory_order_relaxed);
    minus_produced = other.minus_produced.load(std::memory_order_relaxed);
    cumulative_ns = other.cumulative_ns.load(std::memory_order_relaxed);
    return *this;
  }

  void Add(uint64_t consumed, uint64_t plus, uint64_t minus, uint64_t ns) {
    invocations.fetch_add(1, std::memory_order_relaxed);
    tuples_consumed.fetch_add(consumed, std::memory_order_relaxed);
    plus_produced.fetch_add(plus, std::memory_order_relaxed);
    minus_produced.fetch_add(minus, std::memory_order_relaxed);
    cumulative_ns.fetch_add(ns, std::memory_order_relaxed);
  }

  void Reset() {
    invocations.store(0, std::memory_order_relaxed);
    tuples_consumed.store(0, std::memory_order_relaxed);
    plus_produced.store(0, std::memory_order_relaxed);
    minus_produced.store(0, std::memory_order_relaxed);
    cumulative_ns.store(0, std::memory_order_relaxed);
  }
};

/// A node of the propagation network: a base relation (leaf) or a derived
/// relation (the monitored condition itself, or an intermediate shared node
/// under the §7.1 node-sharing policy).
struct NetworkNode {
  RelationId relation = kInvalidRelationId;
  bool is_base = false;
  /// 0 for base relations; 1 + max(children) otherwise (longest path), so a
  /// node is processed only after all its influents' Δ-sets are complete —
  /// the breadth-first bottom-up ordering the calculus requires (§4, §5).
  int level = 0;
  /// Clauses used for this node's differentials (expanded per policy).
  std::vector<objectlog::Clause> clauses;
  /// Aggregate views (§8 extension) have a definition instead of clauses.
  const objectlog::AggregateDef* aggregate = nullptr;
  /// Whether insertions / deletions into this node must be computed.
  bool needs_plus = false;
  bool needs_minus = false;
  /// Indexes into PropagationNetwork::differentials() whose target is this
  /// node, in (clause, literal) order.
  std::vector<size_t> in_edges;
  /// Distinct parent nodes reading this node's Δ-set (for wave-front
  /// discarding).
  std::vector<RelationId> parents;
  /// Cross-wave attribution; mutable because the propagator works on a
  /// const network (the topology IS immutable, the tallies are not).
  mutable NodeStats stats;
  /// Per-literal clause profiles for this node's differentials, folded in
  /// by the propagator's serial merge whenever a profiler is attached
  /// (PropagationOptions::profiler); surfaced by `show network`. Same
  /// mutability rationale as `stats`. Only the merge thread writes it.
  mutable obs::Profile profile;
};

/// Per-root monitoring requirements.
struct RootSpec {
  RelationId relation = kInvalidRelationId;
  /// Propagate deletions up to this root (needed for strict semantics, for
  /// multi-round rule processing, and whenever the consumer must see net
  /// negative changes). With false and no negation below, the network is
  /// insertions-only — the paper's common case (§4.4).
  bool needs_minus = true;
  /// Apply the §7.2 strict filter to the root's Δ+ (drop tuples already
  /// derivable in the old state).
  bool strict = true;
};

/// Options controlling network construction.
struct BuildOptions {
  /// Derived relations NOT to expand: they become intermediate nodes shared
  /// between conditions (paper §7.1 node sharing). Everything else is
  /// flattened into its parents (the paper's default "full expansion").
  std::unordered_set<RelationId> keep;
};

/// The propagation network (paper fig. 2): the dependency network of the
/// monitored conditions augmented with the generated partial differentials
/// on its edges. Immutable once built.
class PropagationNetwork {
 public:
  /// Builds the network for the given condition relations. `roots` entries
  /// must be derived relations with clauses in `registry`.
  static Result<PropagationNetwork> Build(const std::vector<RootSpec>& roots,
                                          const objectlog::DerivedRegistry& registry,
                                          const Catalog& catalog,
                                          const BuildOptions& options = {});

  const std::vector<PartialDifferential>& differentials() const {
    return differentials_;
  }
  const std::unordered_map<RelationId, NetworkNode>& nodes() const {
    return nodes_;
  }
  const NetworkNode* node(RelationId rel) const {
    auto it = nodes_.find(rel);
    return it == nodes_.end() ? nullptr : &it->second;
  }
  const std::vector<RootSpec>& roots() const { return roots_; }

  /// Node ids grouped by level; levels_[0] are the base influents.
  const std::vector<std::vector<RelationId>>& levels() const { return levels_; }

  /// The base relations the monitored conditions depend on — exactly the
  /// relations the database must accumulate Δ-sets for.
  std::vector<RelationId> BaseInfluents() const;

  /// Human-readable dump (nodes by level, then differentials).
  std::string ToString(const Catalog& catalog) const;

  /// Graphviz dot export of the network, each node annotated with its
  /// NodeStats attribution (invocations, Δ+/Δ− produced, consumed tuples,
  /// cumulative time) and each differential drawn as an edge influent →
  /// target. With `root` set, restricts to the subgraph feeding that node
  /// (the nodes from which it is reachable) — the `show network <rule>;`
  /// view.
  std::string ToDot(const Catalog& catalog,
                    RelationId root = kInvalidRelationId) const;

  /// Zeroes every node's attribution tallies (topology untouched).
  void ResetStats() const;

 private:
  PropagationNetwork() = default;

  std::vector<RootSpec> roots_;
  std::vector<PartialDifferential> differentials_;
  std::unordered_map<RelationId, NetworkNode> nodes_;
  std::vector<std::vector<RelationId>> levels_;
};

}  // namespace deltamon::core

#endif  // DELTAMON_CORE_NETWORK_H_
