#include "core/materialized_views.h"

#include "objectlog/eval.h"

namespace deltamon::core {

Status MaterializedViewStore::Initialize(
    const PropagationNetwork& network, const Database& db,
    const objectlog::DerivedRegistry& registry,
    const std::unordered_map<RelationId, DeltaSet>* pending_deltas) {
  views_.clear();
  objectlog::EvalCache cache;
  objectlog::StateContext ctx;
  ctx.deltas = pending_deltas;
  objectlog::EvalState state = (pending_deltas != nullptr)
                                   ? objectlog::EvalState::kOld
                                   : objectlog::EvalState::kNew;
  objectlog::Evaluator evaluator(db, registry, ctx, &cache);
  for (const auto& [rel, node] : network.nodes()) {
    if (node.is_base) continue;
    const FunctionSignature* sig = db.catalog().GetSignature(rel);
    if (sig == nullptr) {
      return Status::Internal("derived node without signature");
    }
    auto view = std::make_unique<BaseRelation>(rel, db.catalog().RelationName(rel),
                                               sig->ToSchema());
    TupleSet extent;
    DELTAMON_RETURN_IF_ERROR(evaluator.Evaluate(rel, state, &extent));
    for (const Tuple& t : extent) view->Insert(t);
    views_.emplace(rel, std::move(view));
  }
  return Status::OK();
}

const BaseRelation* MaterializedViewStore::Get(RelationId rel) const {
  auto it = views_.find(rel);
  return it == views_.end() ? nullptr : it->second.get();
}

Status MaterializedViewStore::Apply(RelationId rel, const DeltaSet& delta) {
  auto it = views_.find(rel);
  if (it == views_.end()) return Status::OK();
  for (const Tuple& t : delta.plus()) it->second->Insert(t);
  for (const Tuple& t : delta.minus()) it->second->Delete(t);
  return Status::OK();
}

size_t MaterializedViewStore::ResidentTuples() const {
  size_t total = 0;
  for (const auto& [rel, view] : views_) total += view->size();
  return total;
}

}  // namespace deltamon::core
