#include "core/propagator.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <unordered_set>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace deltamon::core {

void PropagationResult::Stats::PublishToRegistry() const {
  DELTAMON_OBS_COUNT("propagator.waves", 1);
  DELTAMON_OBS_COUNT("propagator.differentials_executed",
                     differentials_executed);
  DELTAMON_OBS_COUNT("propagator.differentials_skipped",
                     differentials_skipped);
  DELTAMON_OBS_COUNT("propagator.tuples_propagated", tuples_propagated);
  DELTAMON_OBS_COUNT("propagator.filtered_plus", filtered_plus);
  DELTAMON_OBS_COUNT("propagator.filtered_minus", filtered_minus);
  DELTAMON_OBS_RECORD("propagator.peak_wavefront_tuples",
                      peak_wavefront_tuples);
  DELTAMON_OBS_GAUGE_SET("propagator.materialized_resident_tuples",
                         materialized_resident_tuples);
}

std::string TraceEntry::ToString(const Catalog& catalog) const {
  std::string out = "Δ";
  out += produces_plus ? "+" : "-";
  out += catalog.RelationName(target);
  out += "/Δ";
  out += reads_plus ? "+" : "-";
  out += catalog.RelationName(influent);
  out += ": " + std::to_string(tuples_consumed) + " -> " +
         std::to_string(tuples_produced) + " tuples";
  return out;
}

std::vector<TraceEntry> PropagationResult::Explain(RelationId root) const {
  std::vector<TraceEntry> out;
  for (const TraceEntry& e : trace) {
    if (e.target == root && e.tuples_produced > 0) out.push_back(e);
  }
  return out;
}

Status Propagator::ProcessNode(
    RelationId rel, size_t level,
    const std::unordered_map<RelationId, DeltaSet>& wave,
    const std::unordered_map<RelationId, const BaseRelation*>& view_map,
    objectlog::EvalCache* cache, NodeOutput* out) const {
  const NetworkNode& node = network_.nodes().at(rel);
  PropagationResult::Stats& stats = out->stats;
  // Per-node attribution (span + NodeStats): one clock pair per node per
  // wave, only when instrumentation is live — never per tuple. On a worker
  // thread the span becomes a thread-local root (see docs/observability.md).
  DELTAMON_OBS_SPAN(node_span, "propagation", "node");
#if DELTAMON_OBS_ENABLED
  if (node_span.active()) {
    node_span.SetName("node:" + db_.catalog().RelationName(rel));
    node_span.AddField("relation", static_cast<int64_t>(rel));
    node_span.AddField("level", static_cast<int64_t>(level));
  }
  const bool node_obs = obs::Enabled();
  const auto node_start = node_obs ? std::chrono::steady_clock::now()
                                   : std::chrono::steady_clock::time_point{};
#else
  (void)level;
#endif
  // While this node is being computed, point queries against it (the §7.2
  // filters) must evaluate its *definition*, not its stale pre-wave extent:
  // hide its own view for the duration. The hide goes through the
  // evaluator's context (not the shared map) so concurrent nodes of the
  // same level can keep reading view_map.
  objectlog::StateContext ctx;
  ctx.deltas = &wave;
  if (!view_map.empty()) ctx.views = &view_map;
  ctx.hidden_view = rel;
  // The recursive fixpoint below re-exposes this node's growing Δ-set to
  // its own Δ-role literals through this overlay slot — again without
  // touching the shared wave map.
  DeltaSet overlay_slot;
  ctx.overlay_rel = rel;
  ctx.overlay_delta = &overlay_slot;
  // Lineage capture re-runs each differential once per influent Δ-row,
  // restricted to that row (same pointer-indirection contract as the
  // overlay: the evaluator copies ctx by value, we mutate the pointee).
  // With row == nullptr the restriction is dormant and every other
  // evaluation — filters, fixpoint probes — behaves exactly as before.
  objectlog::StateContext::RowRestriction restriction;
  if (options_.lineage) ctx.restrict_delta = &restriction;
  objectlog::Evaluator evaluator(db_, registry_, ctx, cache);
  evaluator.EnableKernels(options_.kernels);
  if (options_.profiler != nullptr) evaluator.SetProfiler(&out->profile);

  DeltaSet acc;
  // Self-edges (linear recursion, paper §5 footnote) are iterated to a
  // fixpoint after the external contributions are known.
  std::vector<size_t> self_edges;
  for (size_t edge : node.in_edges) {
    const PartialDifferential& diff = network_.differentials()[edge];
    if (diff.influent == rel) {
      self_edges.push_back(edge);
      continue;
    }
    auto src = wave.find(diff.influent);

    // Aggregate edge (§8 extension): re-aggregate every group touched by
    // the source Δ-set in the old and new states and diff — exact nets, so
    // no §7.2 filtering is needed.
    if (diff.aggregate) {
      if (src == wave.end() || src->second.empty()) {
        ++stats.differentials_skipped;
        continue;
      }
      DELTAMON_OBS_SPAN(diff_span, "propagation", "differential");
      if (diff_span.active()) diff_span.SetName(diff.Name(db_.catalog()));
      const objectlog::AggregateDef& def = *node.aggregate;
      TupleSet keys;
      for (const TupleSet* delta_side :
           {&src->second.plus(), &src->second.minus()}) {
        for (const Tuple& t : *delta_side) {
          keys.insert(t.Project(def.group_by));
        }
      }
      size_t produced_total = 0;
      for (const Tuple& key : keys) {
        ScanPattern pattern(def.group_by.size() + 1);
        for (size_t i = 0; i < key.arity(); ++i) pattern[i] = key[i];
        TupleSet old_rows;
        TupleSet new_rows;
        DELTAMON_RETURN_IF_ERROR(evaluator.Probe(
            rel, objectlog::EvalState::kOld, pattern, &old_rows));
        DELTAMON_RETURN_IF_ERROR(evaluator.Probe(
            rel, objectlog::EvalState::kNew, pattern, &new_rows));
        DeltaSet group_delta = DiffStates(old_rows, new_rows);
        if (options_.lineage && !group_delta.empty()) {
          // A changed group's Δ rows descend from every source Δ-row of
          // that group — the re-aggregation read them all.
          const std::string via = diff.Name(db_.catalog());
          for (bool src_plus : {true, false}) {
            const TupleSet& side =
                src_plus ? src->second.plus() : src->second.minus();
            for (const Tuple& t : side) {
              if (!(t.Project(def.group_by) == key)) continue;
              WaveLineage::Parent parent{diff.influent, src_plus, t, via};
              for (const Tuple& o : group_delta.plus()) {
                out->lineage.AddParent(rel, true, o, parent);
              }
              for (const Tuple& o : group_delta.minus()) {
                out->lineage.AddParent(rel, false, o, parent);
              }
            }
          }
        }
        produced_total += group_delta.size();
        acc.DeltaUnion(group_delta);
      }
      ++stats.differentials_executed;
      stats.tuples_propagated += produced_total;
      diff_span.AddField("groups", static_cast<int64_t>(keys.size()));
      diff_span.AddField("tuples_produced",
                         static_cast<int64_t>(produced_total));
      out->trace.push_back(TraceEntry{diff.target, diff.influent, true, true,
                                      src->second.size(), produced_total});
      continue;
    }

    const TupleSet* side =
        src == wave.end()
            ? nullptr
            : (diff.reads_plus ? &src->second.plus() : &src->second.minus());
    if (side == nullptr || side->empty()) {
      ++stats.differentials_skipped;
      continue;
    }
    TupleSet produced;
    DELTAMON_OBS_SPAN(diff_span, "propagation", "differential");
    if (diff_span.active()) diff_span.SetName(diff.Name(db_.catalog()));
    if (options_.lineage) {
      // One restricted evaluation per influent row: each row's emissions
      // are exactly its contribution, and the union over rows equals the
      // one-shot result — so acc, traces and stats are unchanged.
      const std::string via = diff.Name(db_.catalog());
      restriction.relation = diff.influent;
      restriction.plus = diff.reads_plus;
      TupleSet row_out;
      for (const Tuple& t : *side) {
        restriction.row = &t;
        row_out.clear();
        Status s = evaluator.EvaluateClause(diff.clause, &row_out);
        restriction.row = nullptr;
        DELTAMON_RETURN_IF_ERROR(s);
        for (const Tuple& o : row_out) {
          out->lineage.AddParent(
              rel, diff.produces_plus, o,
              WaveLineage::Parent{diff.influent, diff.reads_plus, t, via});
          produced.insert(o);
        }
      }
    } else {
      DELTAMON_RETURN_IF_ERROR(evaluator.EvaluateClause(diff.clause,
                                                        &produced));
    }
    diff_span.AddField("tuples_consumed",
                       static_cast<int64_t>(side->size()));
    diff_span.AddField("tuples_produced",
                       static_cast<int64_t>(produced.size()));
    ++stats.differentials_executed;
    stats.tuples_propagated += produced.size();
    out->trace.push_back(TraceEntry{diff.target, diff.influent,
                                    diff.reads_plus, diff.produces_plus,
                                    side->size(), produced.size()});

    if (!diff.produces_plus) {
      // §7.2: a candidate deletion still derivable in the new state must
      // not be propagated — otherwise ∪Δ could cancel a genuine insertion
      // and the rule would under-react, which is unacceptable. (The dual
      // over-approximation on the plus side is harmless here and handled
      // at strict roots below.)
      for (auto it = produced.begin(); it != produced.end();) {
        DELTAMON_ASSIGN_OR_RETURN(
            bool still_there,
            evaluator.Derivable(rel, objectlog::EvalState::kNew, *it));
        if (still_there) {
          ++stats.filtered_minus;
          it = produced.erase(it);
        } else {
          ++it;
        }
      }
    }
    DeltaSet contribution =
        diff.produces_plus ? DeltaSet(std::move(produced), TupleSet{})
                           : DeltaSet(TupleSet{}, std::move(produced));
    acc.DeltaUnion(contribution);
  }

  // Fixpoint iteration over the self-edges: the frontier of fresh changes
  // is re-exposed as this node's Δ-set (via the overlay) and the recursive
  // differentials re-run until nothing new is derived (insertions:
  // semi-naive; deletions: DRed-style, with the §7.2 rederivability filter
  // pruning tuples still derivable through surviving paths).
  if (!self_edges.empty() && !acc.empty()) {
    DELTAMON_OBS_SPAN(fixpoint_span, "propagation", "fixpoint");
    overlay_slot = acc;
    TupleSet total_plus = acc.plus();
    TupleSet total_minus = acc.minus();
    constexpr int kMaxFixpointRounds = 100000;
    int round = 0;
    for (; round < kMaxFixpointRounds && !overlay_slot.empty(); ++round) {
      TupleSet fresh_plus;
      TupleSet fresh_minus;
      for (size_t edge : self_edges) {
        const PartialDifferential& diff = network_.differentials()[edge];
        const TupleSet& side = diff.reads_plus ? overlay_slot.plus()
                                               : overlay_slot.minus();
        if (side.empty()) {
          ++stats.differentials_skipped;
          continue;
        }
        TupleSet produced;
        if (options_.lineage) {
          // Same per-row restriction as above; the restricted Δ-role path
          // bypasses the overlay lookup, so the frontier rows resolve
          // identically whether read via overlay or via restriction.
          const std::string via = diff.Name(db_.catalog());
          restriction.relation = diff.influent;
          restriction.plus = diff.reads_plus;
          TupleSet row_out;
          for (const Tuple& t : side) {
            restriction.row = &t;
            row_out.clear();
            Status s = evaluator.EvaluateClause(diff.clause, &row_out);
            restriction.row = nullptr;
            DELTAMON_RETURN_IF_ERROR(s);
            for (const Tuple& o : row_out) {
              out->lineage.AddParent(
                  rel, diff.produces_plus, o,
                  WaveLineage::Parent{diff.influent, diff.reads_plus, t,
                                      via});
              produced.insert(o);
            }
          }
        } else {
          DELTAMON_RETURN_IF_ERROR(
              evaluator.EvaluateClause(diff.clause, &produced));
        }
        ++stats.differentials_executed;
        stats.tuples_propagated += produced.size();
        out->trace.push_back(
            TraceEntry{diff.target, diff.influent, diff.reads_plus,
                       diff.produces_plus, side.size(), produced.size()});
        for (const Tuple& t : produced) {
          if (diff.produces_plus) {
            if (!total_plus.contains(t)) fresh_plus.insert(t);
          } else {
            if (total_minus.contains(t)) continue;
            DELTAMON_ASSIGN_OR_RETURN(
                bool still_there,
                evaluator.Derivable(rel, objectlog::EvalState::kNew, t));
            if (still_there) {
              ++stats.filtered_minus;
            } else {
              fresh_minus.insert(t);
            }
          }
        }
      }
      total_plus.reserve(total_plus.size() + fresh_plus.size());
      total_plus.insert(fresh_plus.begin(), fresh_plus.end());
      total_minus.reserve(total_minus.size() + fresh_minus.size());
      total_minus.insert(fresh_minus.begin(), fresh_minus.end());
      overlay_slot = DeltaSet(std::move(fresh_plus), std::move(fresh_minus));
    }
    // Post-fixpoint point queries (the filters below) must see this node
    // as unchanged again, exactly as the serial algorithm saw it after
    // removing the frontier from the wave.
    overlay_slot = DeltaSet();
    fixpoint_span.AddField("rounds", round);
    if (round >= kMaxFixpointRounds) {
      return Status::Internal("recursive propagation did not converge");
    }
    acc = DeltaSet(std::move(total_plus), std::move(total_minus));
  }

  // Materialized mode: node Δ-sets must be exact nets, because the extent
  // is maintained by applying them and parents reconstruct this node's OLD
  // state by rolling its Δ back — an over-approximated Δ+ entry (a tuple
  // that was already derivable) would wrongly vanish from the
  // reconstructed old state. The node's own extent has not been applied
  // yet, so it IS the old state: one hash probe filters each candidate.
  // (Without views this filter is unnecessary: old states of derived nodes
  // are re-evaluated from base relations.)
  auto self_view = view_map.find(rel);
  if (self_view != view_map.end() && !acc.plus().empty()) {
    const BaseRelation* old_extent = self_view->second;
    TupleSet kept;
    kept.reserve(acc.plus().size());
    for (const Tuple& t : acc.plus()) {
      if (old_extent->Contains(t)) {
        ++stats.filtered_plus;
      } else {
        kept.insert(t);
      }
    }
    acc = DeltaSet(std::move(kept), acc.minus());
  }

  // Strict-semantics filter at monitored roots (§7.2): drop insertions
  // whose condition instance was already true in the old state.
  const RootSpec* root_spec = nullptr;
  for (const RootSpec& root : network_.roots()) {
    if (root.relation == rel) {
      root_spec = &root;
      break;
    }
  }
  if (root_spec != nullptr && root_spec->strict && !acc.plus().empty()) {
    TupleSet kept;
    for (const Tuple& t : acc.plus()) {
      DELTAMON_ASSIGN_OR_RETURN(
          bool was_true,
          evaluator.Derivable(rel, objectlog::EvalState::kOld, t));
      if (was_true) {
        ++stats.filtered_plus;
      } else {
        kept.insert(t);
      }
    }
    acc = DeltaSet(std::move(kept), acc.minus());
  }

  // acc is final here: fold this node's contribution into its cross-wave
  // attribution and the node span. NodeStats adds are relaxed atomics, so
  // attribution from a worker thread is safe.
#if DELTAMON_OBS_ENABLED
  if (node_obs || node_span.active()) {
    uint64_t consumed = 0;
    for (const TraceEntry& e : out->trace) consumed += e.tuples_consumed;
    node_span.AddField("tuples_consumed", static_cast<int64_t>(consumed));
    node_span.AddField("plus_produced",
                       static_cast<int64_t>(acc.plus().size()));
    node_span.AddField("minus_produced",
                       static_cast<int64_t>(acc.minus().size()));
    if (node_obs) {
      auto elapsed = std::chrono::steady_clock::now() - node_start;
      node.stats.Add(consumed, acc.plus().size(), acc.minus().size(),
                     static_cast<uint64_t>(
                         std::chrono::duration_cast<std::chrono::nanoseconds>(
                             elapsed)
                             .count()));
    }
  }
#endif
  out->acc = std::move(acc);
  return Status::OK();
}

Status Propagator::MergeNode(
    RelationId rel, NodeOutput* out, PropagationResult* result,
    std::unordered_map<RelationId, DeltaSet>* wave, size_t* wavefront,
    std::unordered_map<RelationId, size_t>* pending_parents) const {
  DELTAMON_RETURN_IF_ERROR(out->status);
  result->stats.differentials_executed += out->stats.differentials_executed;
  result->stats.differentials_skipped += out->stats.differentials_skipped;
  result->stats.tuples_propagated += out->stats.tuples_propagated;
  result->stats.filtered_plus += out->stats.filtered_plus;
  result->stats.filtered_minus += out->stats.filtered_minus;
  for (TraceEntry& e : out->trace) result->trace.push_back(e);

  if (options_.profiler != nullptr && !out->profile.empty()) {
    // Serial fold in fixed level order: the global profile and the node's
    // own profile see worker-private counters in a deterministic sequence,
    // so the merged result is bit-identical at any thread count.
    const NetworkNode& profiled = network_.nodes().at(rel);
    profiled.profile.Merge(out->profile);
    options_.profiler->Merge(out->profile);
  }

  if (options_.lineage && !out->lineage.empty()) {
    // Same serial level-order fold as the profiles: parent vectors are
    // appended deterministically, and Export sorts anyway, so lineage is
    // bit-identical at any thread count.
    result->lineage.Merge(std::move(out->lineage));
  }

  DeltaSet& acc = out->acc;
  if (views_ != nullptr && !acc.empty()) {
    DELTAMON_RETURN_IF_ERROR(views_->Apply(rel, acc));
  }
  if (!acc.empty()) {
    *wavefront += acc.size();
    (*wave)[rel] = std::move(acc);
    result->stats.peak_wavefront_tuples =
        std::max(result->stats.peak_wavefront_tuples, *wavefront);
  }

  // Wave-front discard: this node has consumed its children; a derived
  // child whose last parent is done can release its Δ-set (base Δ-sets
  // stay: OLD-state rollback reads them for the rest of the wave).
  const NetworkNode& node = network_.nodes().at(rel);
  std::vector<RelationId> children;
  for (size_t edge : node.in_edges) {
    RelationId child = network_.differentials()[edge].influent;
    if (std::find(children.begin(), children.end(), child) ==
        children.end()) {
      children.push_back(child);
    }
  }
  for (RelationId child : children) {
    size_t& remaining = pending_parents->at(child);
    if (remaining > 0) --remaining;
    if (remaining != 0) continue;
    const NetworkNode& child_node = network_.nodes().at(child);
    if (child_node.is_base || result->root_deltas.contains(child)) continue;
    auto it = wave->find(child);
    if (it != wave->end()) {
      *wavefront -= it->second.size();
      wave->erase(it);
    }
  }
  return Status::OK();
}

Result<PropagationResult> Propagator::Propagate(
    const std::unordered_map<RelationId, DeltaSet>& base_deltas) const {
  DELTAMON_OBS_SCOPED_TIMER(wave_timer, "propagator.wave_ns");
  DELTAMON_OBS_SPAN(wave_span, "propagation", "wave");
  PropagationResult result;
  for (const RootSpec& root : network_.roots()) {
    result.root_deltas.emplace(root.relation, DeltaSet());
  }

  // Seed the wave with the Δ-sets of base influents.
  std::unordered_map<RelationId, DeltaSet> wave;
  for (const auto& [rel, delta] : base_deltas) {
    const NetworkNode* node = network_.node(rel);
    if (node != nullptr && node->is_base && !delta.empty()) {
      if (options_.lineage) {
        for (const Tuple& t : delta.plus()) {
          result.lineage.AddBase(rel, true, t);
        }
        for (const Tuple& t : delta.minus()) {
          result.lineage.AddBase(rel, false, t);
        }
      }
      wave.emplace(rel, delta);
    }
  }
  wave_span.AddField("base_influents_changed",
                     static_cast<int64_t>(wave.size()));
  if (wave.empty()) return result;

  // PF-style mode: expose the maintained extents of derived nodes to the
  // evaluator. Extents are applied as each node completes, so parents read
  // NEW state directly and OLD state by rollback over the wave Δ-sets.
  std::unordered_map<RelationId, const BaseRelation*> view_map;
  if (views_ != nullptr && !views_->empty()) {
    for (const auto& [rel, node] : network_.nodes()) {
      const BaseRelation* view = views_->Get(rel);
      if (view != nullptr) view_map.emplace(rel, view);
    }
  }

  // Remaining parents per node, for wave-front discarding.
  std::unordered_map<RelationId, size_t> pending_parents;
  for (const auto& [rel, node] : network_.nodes()) {
    pending_parents[rel] = node.parents.size();
  }

  // Resolve the execution mode: a provided pool's size wins; otherwise the
  // thread knob (0 = hardware concurrency) decides, spinning up a
  // temporary pool when needed. Workers keep private EvalCaches — pure
  // memoization, so duplicated entries cost at most repeated work.
  common::ThreadPool* pool = options_.pool;
  std::unique_ptr<common::ThreadPool> local_pool;
  size_t num_workers = options_.num_threads;
  if (pool != nullptr) {
    num_workers = pool->num_workers();
  } else if (num_workers == 0) {
    num_workers = std::thread::hardware_concurrency();
    if (num_workers == 0) num_workers = 1;
  }
  if (num_workers > 1 && pool == nullptr) {
    local_pool = std::make_unique<common::ThreadPool>(num_workers);
    pool = local_pool.get();
  }
  // Evaluation caches: by default one fresh EvalCache per worker; a caller
  // that passes PropagationOptions::caches keeps them across waves, so
  // indexed recursive-fixpoint materializations survive when nothing they
  // were computed from changed. The drop predicate is conservative: kOld
  // extents always go (their logical rollback read this wave's Δ-sets),
  // kNew extents go when the relation's dependency closure touches a
  // changed base relation — or a foreign function, whose extent may drift
  // between waves without a recorded delta.
  std::vector<objectlog::EvalCache> local_caches;
  std::vector<objectlog::EvalCache>* caches = options_.caches;
  if (caches == nullptr || caches->size() < num_workers) {
    local_caches.resize(num_workers);
    caches = &local_caches;
  } else {
    std::unordered_set<RelationId> changed;
    for (const auto& [rel, delta] : base_deltas) {
      if (!delta.empty()) changed.insert(rel);
    }
    auto inputs_changed = [&](RelationId rel) {
      std::unordered_set<RelationId> visited;
      std::vector<RelationId> frontier{rel};
      while (!frontier.empty()) {
        RelationId cur = frontier.back();
        frontier.pop_back();
        if (!visited.insert(cur).second) continue;
        if (changed.contains(cur)) return true;
        if (registry_.GetForeign(cur) != nullptr) return true;
        if (const objectlog::AggregateDef* agg =
                registry_.GetAggregate(cur)) {
          frontier.push_back(agg->source);
          continue;
        }
        if (const std::vector<objectlog::Clause>* clauses =
                registry_.GetClauses(cur)) {
          for (RelationId dep :
               objectlog::DerivedRegistry::DirectDependencies(*clauses)) {
            frontier.push_back(dep);
          }
        }
      }
      return false;
    };
    for (objectlog::EvalCache& cache : *caches) {
      cache.BeginWave([&](RelationId rel, objectlog::EvalState state) {
        return state == objectlog::EvalState::kOld || inputs_changed(rel);
      });
    }
  }

  size_t wavefront = 0;  // tuples held in intermediate (derived) Δ-sets
  const auto& levels = network_.levels();
  std::vector<NodeOutput> outputs;
  for (size_t lvl = 1; lvl < levels.size(); ++lvl) {
    DELTAMON_OBS_SCOPED_TIMER(level_timer, "propagator.level_ns");
    const std::vector<RelationId>& level_nodes = levels[lvl];
    if (num_workers <= 1 || level_nodes.size() <= 1 || pool == nullptr) {
      for (RelationId rel : level_nodes) {
        NodeOutput out;
        out.status =
            ProcessNode(rel, lvl, wave, view_map, &(*caches)[0], &out);
        DELTAMON_RETURN_IF_ERROR(MergeNode(rel, &out, &result, &wave,
                                           &wavefront, &pending_parents));
      }
    } else {
      // Level barrier: every node of the level evaluates against the same
      // frozen wave, then the outputs merge in the level's node order —
      // the order the serial loop would have used.
      outputs.clear();
      outputs.resize(level_nodes.size());
      pool->Run(level_nodes.size(), [&](size_t i, size_t worker) {
        outputs[i].status = ProcessNode(level_nodes[i], lvl, wave, view_map,
                                        &(*caches)[worker], &outputs[i]);
      });
      for (size_t i = 0; i < level_nodes.size(); ++i) {
        DELTAMON_RETURN_IF_ERROR(MergeNode(level_nodes[i], &outputs[i],
                                           &result, &wave, &wavefront,
                                           &pending_parents));
      }
    }
  }

  for (auto& [root, delta] : result.root_deltas) {
    auto it = wave.find(root);
    if (it != wave.end()) delta = std::move(it->second);
  }
  if (views_ != nullptr) {
    result.stats.materialized_resident_tuples = views_->ResidentTuples();
  }

  wave_span.AddField("differentials_executed",
                     static_cast<int64_t>(result.stats.differentials_executed));
  wave_span.AddField("differentials_skipped",
                     static_cast<int64_t>(result.stats.differentials_skipped));
  wave_span.AddField("tuples_propagated",
                     static_cast<int64_t>(result.stats.tuples_propagated));
  result.stats.PublishToRegistry();
#if DELTAMON_OBS_ENABLED
  if (obs::Enabled()) {
    for (const TraceEntry& e : result.trace) {
      DELTAMON_OBS_RECORD("propagator.differential_tuples_consumed",
                          e.tuples_consumed);
      DELTAMON_OBS_RECORD("propagator.differential_tuples_produced",
                          e.tuples_produced);
    }
  }
#endif
  // Structured per-differential flow for external consumers (the trace
  // sink is orthogonal to the metrics toggle: installing a sink is itself
  // the opt-in, and emission is one atomic load when none is installed).
  if (obs::TraceEnabled()) {
    for (const TraceEntry& e : result.trace) {
      obs::EmitTrace(obs::TraceEvent{
          "propagation",
          "differential",
          {{"target", static_cast<int64_t>(e.target)},
           {"influent", static_cast<int64_t>(e.influent)},
           {"reads_plus", e.reads_plus ? 1 : 0},
           {"produces_plus", e.produces_plus ? 1 : 0},
           {"tuples_consumed", static_cast<int64_t>(e.tuples_consumed)},
           {"tuples_produced", static_cast<int64_t>(e.tuples_produced)}}});
    }
  }
  return result;
}

}  // namespace deltamon::core
