#ifndef DELTAMON_CORE_PROPAGATOR_H_
#define DELTAMON_CORE_PROPAGATOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/materialized_views.h"
#include "core/network.h"
#include "delta/delta_set.h"
#include "objectlog/eval.h"
#include "storage/database.h"

namespace deltamon::core {

/// One executed partial differential, recorded for explainability (paper
/// §1, §8: "one can easily determine which influents actually caused a rule
/// to trigger and if it was triggered by an insertion or a deletion").
struct TraceEntry {
  RelationId target = kInvalidRelationId;
  RelationId influent = kInvalidRelationId;
  bool reads_plus = true;
  bool produces_plus = true;
  size_t tuples_consumed = 0;
  size_t tuples_produced = 0;

  std::string ToString(const Catalog& catalog) const;
};

/// Result of one propagation wave.
struct PropagationResult {
  /// Net Δ-sets of the monitored condition relations (the network roots),
  /// after the §7.2 corrections.
  std::unordered_map<RelationId, DeltaSet> root_deltas;
  /// Executed differentials, in execution order.
  std::vector<TraceEntry> trace;

  /// Per-wave counters. This struct is a *snapshot view*: the canonical
  /// cross-wave accounting lives in the global obs registry (the
  /// `propagator.*` metrics), fed exactly once per wave by
  /// PublishToRegistry(). Callers that want "what happened in this wave"
  /// read the struct; callers that want trajectories read the registry.
  struct Stats {
    size_t differentials_executed = 0;
    /// Differentials skipped because their influent side was empty — the
    /// payoff of partial differencing in small transactions (paper §1).
    size_t differentials_skipped = 0;
    size_t tuples_propagated = 0;
    /// Peak number of tuples simultaneously held in intermediate
    /// ("wave-front") Δ-sets, measuring the space optimization of §5.
    size_t peak_wavefront_tuples = 0;
    /// Tuples removed by the strict / presence filters (§7.2).
    size_t filtered_plus = 0;
    size_t filtered_minus = 0;
    /// Tuples resident in materialized intermediate views after the wave
    /// (0 when running without a MaterializedViewStore).
    size_t materialized_resident_tuples = 0;

    /// Folds this wave into the global obs registry (`propagator.*`);
    /// called by Propagator::Propagate on success. No-op when
    /// instrumentation is compiled out or disabled at run time.
    void PublishToRegistry() const;
  };
  Stats stats;

  /// Influents (with polarity) whose differentials produced tuples for
  /// `root` — the "why did this rule trigger" answer.
  std::vector<TraceEntry> Explain(RelationId root) const;
};

/// Executes the breadth-first bottom-up propagation algorithm (paper §5)
/// over a PropagationNetwork:
///
///   for each level (starting with the lowest)
///     for each changed node (non-empty Δ-set)
///       for each edge to an above node
///         execute the partial differential(s) and accumulate the result
///         in the Δ-set of the node above using ∪Δ
///
/// Δ-sets of intermediate nodes are discarded as soon as every parent has
/// been processed (the "wave-front" materialization of §5); base Δ-sets
/// stay live for the whole wave because OLD-state reconstruction by logical
/// rollback needs them.
class Propagator {
 public:
  /// `views`, when non-null, switches to PF-style evaluation: derived
  /// nodes' extents are read from (and maintained in) the store instead of
  /// re-derived, trading residency for evaluation work (paper §2 contrast;
  /// see MaterializedViewStore). The store must have been initialized for
  /// this network and requires deletions to be propagated everywhere.
  Propagator(const Database& db, const objectlog::DerivedRegistry& registry,
             const PropagationNetwork& network,
             MaterializedViewStore* views = nullptr)
      : db_(db), registry_(registry), network_(network), views_(views) {}

  /// Runs one wave from the given base-relation Δ-sets (typically
  /// Database::TakePendingDeltas()). Entries for relations outside the
  /// network are ignored.
  Result<PropagationResult> Propagate(
      const std::unordered_map<RelationId, DeltaSet>& base_deltas) const;

 private:
  const Database& db_;
  const objectlog::DerivedRegistry& registry_;
  const PropagationNetwork& network_;
  MaterializedViewStore* views_ = nullptr;
};

}  // namespace deltamon::core

#endif  // DELTAMON_CORE_PROPAGATOR_H_
