#ifndef DELTAMON_CORE_PROPAGATOR_H_
#define DELTAMON_CORE_PROPAGATOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/lineage.h"
#include "core/materialized_views.h"
#include "core/network.h"
#include "delta/delta_set.h"
#include "objectlog/eval.h"
#include "storage/database.h"

namespace deltamon::common {
class ThreadPool;
}  // namespace deltamon::common

namespace deltamon::core {

/// One executed partial differential, recorded for explainability (paper
/// §1, §8: "one can easily determine which influents actually caused a rule
/// to trigger and if it was triggered by an insertion or a deletion").
struct TraceEntry {
  RelationId target = kInvalidRelationId;
  RelationId influent = kInvalidRelationId;
  bool reads_plus = true;
  bool produces_plus = true;
  size_t tuples_consumed = 0;
  size_t tuples_produced = 0;

  std::string ToString(const Catalog& catalog) const;
};

/// Result of one propagation wave.
struct PropagationResult {
  /// Net Δ-sets of the monitored condition relations (the network roots),
  /// after the §7.2 corrections.
  std::unordered_map<RelationId, DeltaSet> root_deltas;
  /// Executed differentials, in execution order.
  std::vector<TraceEntry> trace;

  /// Row-level delta lineage of the wave; empty unless
  /// PropagationOptions::lineage was set. Folded serially in level order
  /// (like trace/stats/profiles), so it is bit-identical at any thread
  /// count and with kernels on or off.
  WaveLineage lineage;

  /// Per-wave counters. This struct is a *snapshot view*: the canonical
  /// cross-wave accounting lives in the global obs registry (the
  /// `propagator.*` metrics), fed exactly once per wave by
  /// PublishToRegistry(). Callers that want "what happened in this wave"
  /// read the struct; callers that want trajectories read the registry.
  struct Stats {
    size_t differentials_executed = 0;
    /// Differentials skipped because their influent side was empty — the
    /// payoff of partial differencing in small transactions (paper §1).
    size_t differentials_skipped = 0;
    size_t tuples_propagated = 0;
    /// Peak number of tuples simultaneously held in intermediate
    /// ("wave-front") Δ-sets, measuring the space optimization of §5.
    size_t peak_wavefront_tuples = 0;
    /// Tuples removed by the strict / presence filters (§7.2).
    size_t filtered_plus = 0;
    size_t filtered_minus = 0;
    /// Tuples resident in materialized intermediate views after the wave
    /// (0 when running without a MaterializedViewStore).
    size_t materialized_resident_tuples = 0;

    /// Folds this wave into the global obs registry (`propagator.*`);
    /// called by Propagator::Propagate on success. No-op when
    /// instrumentation is compiled out or disabled at run time.
    void PublishToRegistry() const;
  };
  Stats stats;

  /// Influents (with polarity) whose differentials produced tuples for
  /// `root` — the "why did this rule trigger" answer.
  std::vector<TraceEntry> Explain(RelationId root) const;
};

/// Execution knobs for one propagation wave.
struct PropagationOptions {
  /// Worker threads per level (level-synchronous parallelism): every node
  /// of one network level reads only Δ-sets of strictly lower nodes plus
  /// base state, so the nodes of a level evaluate concurrently and their
  /// outputs are merged into the wave in the level's fixed node order —
  /// making root_deltas, the TraceEntry sequence and Stats bit-identical
  /// at any thread count. 1 (the default) is the classic serial algorithm;
  /// 0 means std::thread::hardware_concurrency().
  size_t num_threads = 1;
  /// Reusable pool to run on; its num_workers() then determines the actual
  /// parallelism (long-lived callers like RuleManager keep one pool sized
  /// to their thread setting). When null and the effective thread count
  /// exceeds 1, a temporary pool is created per Propagate() call.
  common::ThreadPool* pool = nullptr;
  /// When non-null, every clause evaluated during the wave records
  /// per-literal counters: each worker writes a private profile and the
  /// serial merge folds them — into this global profile and into each
  /// NetworkNode's `profile` — in fixed level order, so the result is
  /// bit-identical at any thread count. Null (the default) keeps the
  /// evaluator's profiling branches dormant.
  obs::Profile* profiler = nullptr;
  /// Per-worker evaluation caches that outlive the wave. When non-null
  /// (and sized >= the effective worker count), Propagate calls
  /// BeginWave() on each — dropping wave-scoped extents but retaining
  /// indexed recursive-fixpoint materializations whose inputs did not
  /// change — instead of constructing fresh caches. Long-lived callers
  /// (RuleManager) pass their own vector; null keeps the old
  /// fresh-caches-per-wave behavior.
  std::vector<objectlog::EvalCache>* caches = nullptr;
  /// Route eligible partial differentials through the batch evaluation
  /// kernels (columnar Δ-tables, build–probe hash joins, semi-join
  /// pre-filters; docs/kernels.md). Results are identical either way;
  /// per-literal `access` labels in profiles reflect the chosen strategy.
  bool kernels = true;
  /// Capture row-level delta lineage into PropagationResult::lineage:
  /// every differential evaluates once per influent Δ-row (restricted via
  /// StateContext::RowRestriction) so each produced tuple is attributed to
  /// the exact rows it was derived from. Root Δ-sets, traces and stats are
  /// unchanged — the per-row union equals the one-shot result — but the
  /// per-row evaluation costs more (see docs/observability.md for the
  /// model); off (the default) adds zero work to the hot path.
  bool lineage = false;
};

/// Executes the breadth-first bottom-up propagation algorithm (paper §5)
/// over a PropagationNetwork:
///
///   for each level (starting with the lowest)
///     for each changed node (non-empty Δ-set)
///       for each edge to an above node
///         execute the partial differential(s) and accumulate the result
///         in the Δ-set of the node above using ∪Δ
///
/// Δ-sets of intermediate nodes are discarded as soon as every parent has
/// been processed (the "wave-front" materialization of §5); base Δ-sets
/// stay live for the whole wave because OLD-state reconstruction by logical
/// rollback needs them.
///
/// With options.num_threads > 1 the inner loop runs data-parallel per
/// level (see PropagationOptions and docs/parallelism.md); results are
/// deterministic and identical to the serial mode.
class Propagator {
 public:
  /// `views`, when non-null, switches to PF-style evaluation: derived
  /// nodes' extents are read from (and maintained in) the store instead of
  /// re-derived, trading residency for evaluation work (paper §2 contrast;
  /// see MaterializedViewStore). The store must have been initialized for
  /// this network and requires deletions to be propagated everywhere.
  Propagator(const Database& db, const objectlog::DerivedRegistry& registry,
             const PropagationNetwork& network,
             MaterializedViewStore* views = nullptr,
             PropagationOptions options = {})
      : db_(db),
        registry_(registry),
        network_(network),
        views_(views),
        options_(options) {}

  /// Runs one wave from the given base-relation Δ-sets (typically
  /// Database::TakePendingDeltas()). Entries for relations outside the
  /// network are ignored.
  Result<PropagationResult> Propagate(
      const std::unordered_map<RelationId, DeltaSet>& base_deltas) const;

 private:
  /// Everything one node's evaluation produces. Workers fill NodeOutputs
  /// independently; MergeNode folds them into the wave serially, in the
  /// level's node order, so the serial and parallel modes share one
  /// accumulation path (and therefore one result).
  struct NodeOutput {
    Status status = Status::OK();
    DeltaSet acc;
    std::vector<TraceEntry> trace;
    PropagationResult::Stats stats;
    /// Per-literal clause profiles from this node's evaluation; empty
    /// unless PropagationOptions::profiler is set.
    obs::Profile profile;
    /// Row-level lineage fragment; empty unless PropagationOptions::lineage
    /// is set. Folded into the result serially by MergeNode.
    WaveLineage lineage;
  };

  /// Evaluates one node against the frozen lower-level state: runs its
  /// partial differentials, the self-edge fixpoint, and the §7.2 filters.
  /// Reads `wave` and `view_map` but never mutates them (per-node overlay
  /// and view hiding go through the evaluator's StateContext), so any
  /// number of same-level ProcessNode calls may run concurrently.
  Status ProcessNode(
      RelationId rel, size_t level,
      const std::unordered_map<RelationId, DeltaSet>& wave,
      const std::unordered_map<RelationId, const BaseRelation*>& view_map,
      objectlog::EvalCache* cache, NodeOutput* out) const;

  /// Folds one node's output into the running wave state: trace append,
  /// stats fold, view apply, wave insert, peak accounting, and wave-front
  /// discard of exhausted children. Serial by construction.
  Status MergeNode(RelationId rel, NodeOutput* out, PropagationResult* result,
                   std::unordered_map<RelationId, DeltaSet>* wave,
                   size_t* wavefront,
                   std::unordered_map<RelationId, size_t>* pending_parents)
      const;

  const Database& db_;
  const objectlog::DerivedRegistry& registry_;
  const PropagationNetwork& network_;
  MaterializedViewStore* views_ = nullptr;
  PropagationOptions options_;
};

}  // namespace deltamon::core

#endif  // DELTAMON_CORE_PROPAGATOR_H_
