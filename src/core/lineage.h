#ifndef DELTAMON_CORE_LINEAGE_H_
#define DELTAMON_CORE_LINEAGE_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/tuple.h"
#include "obs/json.h"
#include "storage/catalog.h"

namespace deltamon::core {

/// Delta lineage of one propagation wave: for every derived Δ-tuple the
/// wave produced, which influent Δ-rows it was derived from, and through
/// which partial differential. Keys are (relation, polarity, row) — the
/// identity of a Δ-tuple — so a firing instance at a network root can be
/// walked back edge by edge to the originating base-relation updates
/// (paper §1/§8: "which influents actually caused a rule to trigger",
/// extended from differential granularity to row granularity).
///
/// Built per node by the lineage-capturing ProcessNode path and folded
/// serially in level order by MergeNode — the same discipline that makes
/// traces, stats and profiles bit-identical at any thread count.
class WaveLineage {
 public:
  /// One derivation edge: the produced row came from this influent Δ-row
  /// via the named partial differential.
  struct Parent {
    RelationId relation = kInvalidRelationId;
    bool plus = true;
    Tuple row;
    /// PartialDifferential::Name(catalog), e.g. "Δcnd/Δ+quantity".
    std::string via;

    bool operator==(const Parent& other) const {
      return relation == other.relation && plus == other.plus &&
             row == other.row && via == other.via;
    }
  };

  struct Entry {
    /// True for wave seeds: rows of the base-relation Δ-sets themselves.
    bool base = false;
    std::vector<Parent> parents;
  };

  /// Marks (rel, plus, row) as a base influent row (a lineage leaf).
  void AddBase(RelationId rel, bool plus, const Tuple& row);

  /// Records one derivation edge; exact duplicates (same parent row via
  /// the same differential) are dropped so re-derivations during the
  /// fixpoint rounds don't bloat entries.
  void AddParent(RelationId rel, bool plus, const Tuple& row, Parent parent);

  /// Null when the wave never produced (rel, plus, row).
  const Entry* Find(RelationId rel, bool plus, const Tuple& row) const;

  /// Folds `other` into this lineage (entry union, parent dedupe, base
  /// flag OR). Called serially in level order.
  void Merge(WaveLineage&& other);

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  /// The lineage tree of (rel, plus, row) as JSON:
  ///   {relation, polarity: "+"|"-", row, base?, inputs: [{via, ...}...]}
  /// Children are sorted (by via, relation name, polarity, row rendering)
  /// and the walk carries a visited set plus a depth cap, so the export is
  /// byte-identical across thread counts and terminates on any input.
  /// Rows not produced by the wave render as {..., "unknown": true}.
  obs::Json Export(RelationId rel, bool plus, const Tuple& row,
                   const Catalog& catalog, size_t max_depth = 64) const;

 private:
  struct Key {
    RelationId relation = kInvalidRelationId;
    bool plus = true;
    Tuple row;

    bool operator==(const Key& other) const {
      return relation == other.relation && plus == other.plus &&
             row == other.row;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      size_t h = TupleHash{}(k.row);
      h ^= (static_cast<size_t>(k.relation) * 0x9e3779b97f4a7c15ULL) +
           (k.plus ? 0x2545f4914f6cdd1dULL : 0) + (h << 6) + (h >> 2);
      return h;
    }
  };

  obs::Json ExportNode(const Key& key, const Catalog& catalog, size_t depth,
                       size_t max_depth,
                       std::unordered_set<Key, KeyHash>* path) const;

  std::unordered_map<Key, Entry, KeyHash> entries_;
};

}  // namespace deltamon::core

#endif  // DELTAMON_CORE_LINEAGE_H_
