#ifndef DELTAMON_STORAGE_SNAPSHOT_H_
#define DELTAMON_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/tuple.h"
#include "delta/delta_set.h"
#include "storage/catalog.h"

namespace deltamon {

/// True iff `t` matches `pattern` (bound positions equal; empty pattern
/// matches everything). The same predicate BaseRelation::Scan applies,
/// exposed for footprint validation.
bool TupleMatchesPattern(const Tuple& t, const ScanPattern& pattern);

/// What one transaction read from one base relation, at scan-pattern
/// granularity: the patterns it probed/scanned with, or `full` when it
/// read the whole extent (or probed with too many distinct patterns to
/// keep). Validation conflicts the footprint against the tuples a
/// concurrent transaction committed: a written tuple matching any pattern
/// means the read would return differently today than it did.
struct ReadFootprint {
  bool full = false;
  std::vector<ScanPattern> patterns;

  /// Above this many distinct patterns the footprint collapses to `full`;
  /// bounds both memory and validation cost per (txn, relation).
  static constexpr size_t kMaxPatterns = 64;

  void AddFull() {
    full = true;
    patterns.clear();
  }
  void AddPattern(const ScanPattern& pattern);
  bool Overlaps(const DeltaSet& written) const;
};

/// One session's private transaction state (ROADMAP item 2): a begin
/// version identifying its snapshot, a per-relation write overlay (the
/// paper's <Δ+, Δ−> reused as a transaction-private Δ-set layered over the
/// shared store), and the read footprint first-committer-wins validation
/// checks at commit.
///
/// The overlay is maintained relative to the snapshot state:
///   view(rel) = (stored(rel) − overlay.minus) ∪ overlay.plus
/// with plus disjoint from the snapshot extent and minus a subset of it.
/// Buffered updates are folded view-aware, so replaying plus/minus against
/// the store at commit reproduces exactly the net change the transaction
/// computed — and every membership decision the folding made is protected
/// by a recorded point read, so a concurrent commit that would have
/// changed the decision aborts this transaction instead of silently
/// diverging from its serial replay.
class TxnSnapshot {
 public:
  TxnSnapshot() = default;

  uint64_t begin_version() const { return begin_version_; }
  bool explicit_begin() const { return explicit_begin_; }
  void set_explicit_begin(bool on) { explicit_begin_ = on; }

  bool HasWrites() const { return !writes_.empty(); }
  bool HasReads() const { return !reads_.empty(); }
  const std::unordered_map<RelationId, DeltaSet>& writes() const {
    return writes_;
  }
  const std::unordered_map<RelationId, ReadFootprint>& reads() const {
    return reads_;
  }

  /// Discards all buffered writes and recorded reads and re-snapshots at
  /// `version` — begin, abort, and post-commit reset are all this.
  void Reset(uint64_t version);

  /// The transaction's private Δ-set over `rel`, or null if untouched.
  const DeltaSet* OverlayFor(RelationId rel) const;

  /// Membership in the transaction's view of `rel` (overlay over `base`).
  bool ViewContains(const BaseRelation& base, RelationId rel,
                    const Tuple& t) const;

  /// --- Read recording (evaluator hooks) --------------------------------
  void RecordScan(RelationId rel, const ScanPattern& pattern);
  void RecordPointRead(RelationId rel, const Tuple& t);

  /// --- Buffered DML ----------------------------------------------------
  /// Type-checks against the catalog and folds into the overlay without
  /// touching shared storage. Set replaces every view tuple whose argument
  /// prefix equals `args`, recording the prefix probe as a read.
  Status BufferInsert(const Catalog& catalog, RelationId rel, const Tuple& t);
  Status BufferDelete(const Catalog& catalog, RelationId rel, const Tuple& t);
  Status BufferSet(const Catalog& catalog, RelationId rel, const Tuple& args,
                   const Tuple& results);

  /// Result of the last successful commit through the transaction manager
  /// (for metrics/tests: which version and commit wave it landed in).
  struct CommitInfo {
    uint64_t version = 0;     ///< this transaction's commit version
    uint64_t batch_id = 0;    ///< commit wave it was grouped into
    uint64_t batch_size = 0;  ///< transactions committed in that wave
    uint64_t queue_wait_ns = 0;
    uint64_t check_ns = 0;
  };
  CommitInfo last_commit;

 private:
  Result<const BaseRelation*> CheckedBase(const Catalog& catalog,
                                          RelationId rel,
                                          const Tuple& t) const;

  uint64_t begin_version_ = 0;
  bool explicit_begin_ = false;
  std::unordered_map<RelationId, DeltaSet> writes_;
  std::unordered_map<RelationId, ReadFootprint> reads_;
};

}  // namespace deltamon

#endif  // DELTAMON_STORAGE_SNAPSHOT_H_
