#include "storage/snapshot.h"

#include <algorithm>

namespace deltamon {

bool TupleMatchesPattern(const Tuple& t, const ScanPattern& pattern) {
  if (pattern.empty()) return true;
  if (pattern.size() != t.arity()) return false;
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (pattern[i].has_value() && !(*pattern[i] == t[i])) return false;
  }
  return true;
}

namespace {

bool PatternIsFull(const ScanPattern& pattern) {
  return std::none_of(pattern.begin(), pattern.end(),
                      [](const auto& p) { return p.has_value(); });
}

}  // namespace

void ReadFootprint::AddPattern(const ScanPattern& pattern) {
  if (full) return;
  for (const ScanPattern& existing : patterns) {
    if (existing == pattern) return;
  }
  if (patterns.size() >= kMaxPatterns) {
    AddFull();
    return;
  }
  patterns.push_back(pattern);
}

bool ReadFootprint::Overlaps(const DeltaSet& written) const {
  if (written.empty()) return false;
  if (full) return true;
  for (const ScanPattern& pattern : patterns) {
    for (const Tuple& t : written.plus()) {
      if (TupleMatchesPattern(t, pattern)) return true;
    }
    for (const Tuple& t : written.minus()) {
      if (TupleMatchesPattern(t, pattern)) return true;
    }
  }
  return false;
}

void TxnSnapshot::Reset(uint64_t version) {
  begin_version_ = version;
  explicit_begin_ = false;
  writes_.clear();
  reads_.clear();
}

const DeltaSet* TxnSnapshot::OverlayFor(RelationId rel) const {
  auto it = writes_.find(rel);
  return it == writes_.end() ? nullptr : &it->second;
}

bool TxnSnapshot::ViewContains(const BaseRelation& base, RelationId rel,
                               const Tuple& t) const {
  const DeltaSet* overlay = OverlayFor(rel);
  if (overlay != nullptr) {
    if (overlay->plus().contains(t)) return true;
    if (overlay->minus().contains(t)) return false;
  }
  return base.Contains(t);
}

void TxnSnapshot::RecordScan(RelationId rel, const ScanPattern& pattern) {
  ReadFootprint& fp = reads_[rel];
  if (PatternIsFull(pattern)) {
    fp.AddFull();
  } else {
    fp.AddPattern(pattern);
  }
}

void TxnSnapshot::RecordPointRead(RelationId rel, const Tuple& t) {
  ScanPattern pattern(t.arity());
  for (size_t i = 0; i < t.arity(); ++i) pattern[i] = t[i];
  reads_[rel].AddPattern(pattern);
}

Result<const BaseRelation*> TxnSnapshot::CheckedBase(const Catalog& catalog,
                                                     RelationId rel,
                                                     const Tuple& t) const {
  const BaseRelation* base = catalog.GetBaseRelation(rel);
  if (base == nullptr) {
    return Status::InvalidArgument("relation id " + std::to_string(rel) +
                                   " is not a stored function");
  }
  DELTAMON_RETURN_IF_ERROR(base->schema().TypeCheck(t));
  return base;
}

Status TxnSnapshot::BufferInsert(const Catalog& catalog, RelationId rel,
                                 const Tuple& t) {
  DELTAMON_ASSIGN_OR_RETURN(const BaseRelation* base,
                            CheckedBase(catalog, rel, t));
  // The membership decision below depends on the shared store; protect it
  // with a point read so a concurrent commit flipping it aborts us.
  RecordPointRead(rel, t);
  if (ViewContains(*base, rel, t)) return Status::OK();  // set-semantics no-op
  DeltaSet& overlay = writes_[rel];
  overlay.ApplyInsert(t);  // cancels a buffered delete of a stored tuple
  if (overlay.empty()) writes_.erase(rel);
  return Status::OK();
}

Status TxnSnapshot::BufferDelete(const Catalog& catalog, RelationId rel,
                                 const Tuple& t) {
  DELTAMON_ASSIGN_OR_RETURN(const BaseRelation* base,
                            CheckedBase(catalog, rel, t));
  RecordPointRead(rel, t);
  if (!ViewContains(*base, rel, t)) return Status::OK();
  DeltaSet& overlay = writes_[rel];
  overlay.ApplyDelete(t);  // cancels a buffered insert, else records delete
  if (overlay.empty()) writes_.erase(rel);
  return Status::OK();
}

Status TxnSnapshot::BufferSet(const Catalog& catalog, RelationId rel,
                              const Tuple& args, const Tuple& results) {
  const BaseRelation* base = catalog.GetBaseRelation(rel);
  if (base == nullptr) {
    return Status::InvalidArgument("relation id " + std::to_string(rel) +
                                   " is not a stored function");
  }
  if (args.arity() + results.arity() != base->arity()) {
    return Status::TypeError("set " + base->name() + ": arity mismatch");
  }
  const Tuple replacement = args.Concat(results);
  DELTAMON_RETURN_IF_ERROR(base->schema().TypeCheck(replacement));

  // Collect the view tuples with this argument prefix: stored tuples not
  // buffered-deleted, plus buffered inserts. The prefix probe is the read
  // this statement depends on.
  ScanPattern pattern(base->arity());
  for (size_t i = 0; i < args.arity(); ++i) pattern[i] = args[i];
  RecordScan(rel, pattern);

  std::vector<Tuple> old_tuples;
  {
    const DeltaSet* overlay = OverlayFor(rel);
    base->Scan(pattern, [&](const Tuple& t) {
      if (overlay == nullptr || !overlay->minus().contains(t)) {
        old_tuples.push_back(t);
      }
      return true;
    });
    if (overlay != nullptr) {
      for (const Tuple& t : overlay->plus()) {
        if (TupleMatchesPattern(t, pattern)) old_tuples.push_back(t);
      }
    }
  }
  DeltaSet& overlay = writes_[rel];
  for (const Tuple& t : old_tuples) overlay.ApplyDelete(t);
  overlay.ApplyInsert(replacement);
  if (overlay.empty()) writes_.erase(rel);
  return Status::OK();
}

}  // namespace deltamon
