#include "storage/catalog.h"

namespace deltamon {

Schema FunctionSignature::ToSchema() const {
  std::vector<ColumnType> cols = argument_types;
  cols.insert(cols.end(), result_types.begin(), result_types.end());
  return Schema(std::move(cols));
}

std::string FunctionSignature::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < argument_types.size(); ++i) {
    if (i > 0) out += ", ";
    out += argument_types[i].ToString();
  }
  out += ") -> (";
  for (size_t i = 0; i < result_types.size(); ++i) {
    if (i > 0) out += ", ";
    out += result_types[i].ToString();
  }
  return out + ")";
}

Result<TypeId> Catalog::CreateType(const std::string& name) {
  if (type_by_name_.contains(name)) {
    return Status::AlreadyExists("type '" + name + "' already exists");
  }
  TypeId id = next_type_id_++;
  type_by_name_[name] = id;
  types_[id] = ObjectType{id, name};
  objects_by_type_[id];  // materialize empty vector
  return id;
}

Result<TypeId> Catalog::FindType(const std::string& name) const {
  auto it = type_by_name_.find(name);
  if (it == type_by_name_.end()) {
    return Status::NotFound("type '" + name + "' not found");
  }
  return it->second;
}

const ObjectType* Catalog::GetType(TypeId id) const {
  auto it = types_.find(id);
  return it == types_.end() ? nullptr : &it->second;
}

Result<Oid> Catalog::CreateObject(TypeId type) {
  if (!types_.contains(type)) {
    return Status::NotFound("unknown type id " + std::to_string(type));
  }
  Oid oid{next_oid_++, type};
  objects_by_type_[type].push_back(oid);
  return oid;
}

const std::vector<Oid>& Catalog::ObjectsOfType(TypeId type) const {
  static const std::vector<Oid> kEmpty;
  auto it = objects_by_type_.find(type);
  return it == objects_by_type_.end() ? kEmpty : it->second;
}

Result<RelationId> Catalog::CreateStoredFunction(const std::string& name,
                                                 FunctionSignature signature) {
  if (relation_by_name_.contains(name)) {
    return Status::AlreadyExists("function '" + name + "' already exists");
  }
  RelationId id = next_relation_id_++;
  relation_by_name_[name] = id;
  Schema schema = signature.ToSchema();
  relations_[id] = RelationEntry{
      name, std::move(signature), RelationEntry::Kind::kStored,
      std::make_unique<BaseRelation>(id, name, std::move(schema))};
  return id;
}

Result<RelationId> Catalog::CreateDerivedFunction(const std::string& name,
                                                  FunctionSignature signature) {
  if (relation_by_name_.contains(name)) {
    return Status::AlreadyExists("function '" + name + "' already exists");
  }
  RelationId id = next_relation_id_++;
  relation_by_name_[name] = id;
  relations_[id] = RelationEntry{name, std::move(signature),
                                 RelationEntry::Kind::kDerived, nullptr};
  return id;
}

Result<RelationId> Catalog::CreateForeignFunction(const std::string& name,
                                                  FunctionSignature signature) {
  if (relation_by_name_.contains(name)) {
    return Status::AlreadyExists("function '" + name + "' already exists");
  }
  RelationId id = next_relation_id_++;
  relation_by_name_[name] = id;
  relations_[id] = RelationEntry{name, std::move(signature),
                                 RelationEntry::Kind::kForeign, nullptr};
  return id;
}

Result<RelationId> Catalog::FindRelation(const std::string& name) const {
  auto it = relation_by_name_.find(name);
  if (it == relation_by_name_.end()) {
    return Status::NotFound("function '" + name + "' not found");
  }
  return it->second;
}

BaseRelation* Catalog::GetBaseRelation(RelationId id) {
  auto it = relations_.find(id);
  return it == relations_.end() ? nullptr : it->second.base.get();
}

const BaseRelation* Catalog::GetBaseRelation(RelationId id) const {
  auto it = relations_.find(id);
  return it == relations_.end() ? nullptr : it->second.base.get();
}

bool Catalog::IsDerived(RelationId id) const {
  auto it = relations_.find(id);
  return it != relations_.end() &&
         it->second.kind == RelationEntry::Kind::kDerived;
}

bool Catalog::IsForeign(RelationId id) const {
  auto it = relations_.find(id);
  return it != relations_.end() &&
         it->second.kind == RelationEntry::Kind::kForeign;
}

const std::string& Catalog::RelationName(RelationId id) const {
  static const std::string kUnknown = "?";
  auto it = relations_.find(id);
  return it == relations_.end() ? kUnknown : it->second.name;
}

const FunctionSignature* Catalog::GetSignature(RelationId id) const {
  auto it = relations_.find(id);
  return it == relations_.end() ? nullptr : &it->second.signature;
}

std::vector<RelationId> Catalog::AllRelationIds() const {
  std::vector<RelationId> out;
  out.reserve(relations_.size());
  for (RelationId id = 1; id < next_relation_id_; ++id) {
    if (relations_.contains(id)) out.push_back(id);
  }
  return out;
}

}  // namespace deltamon
