#ifndef DELTAMON_STORAGE_CATALOG_H_
#define DELTAMON_STORAGE_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "storage/base_relation.h"
#include "storage/stats_store.h"

namespace deltamon {

/// Metadata for a user-defined object type ("item", "supplier", ...).
struct ObjectType {
  TypeId id = kInvalidTypeId;
  std::string name;
};

/// Signature of a function (stored or derived) in the AMOS-style functional
/// data model: f(arg_types) -> result_types, stored/evaluated as a relation
/// over (args..., results...).
struct FunctionSignature {
  std::vector<ColumnType> argument_types;
  std::vector<ColumnType> result_types;

  size_t arity() const { return argument_types.size() + result_types.size(); }
  /// Relation schema: argument columns followed by result columns.
  Schema ToSchema() const;
  std::string ToString() const;
};

/// The database catalog: object types, object id allocation, and stored
/// functions (base relations). Derived functions are registered by name
/// with their ids here but defined in the ObjectLog layer.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// --- Object types ---------------------------------------------------

  /// Registers a new object type; fails with AlreadyExists on name reuse.
  Result<TypeId> CreateType(const std::string& name);
  Result<TypeId> FindType(const std::string& name) const;
  const ObjectType* GetType(TypeId id) const;

  /// Allocates a fresh object of the given type.
  Result<Oid> CreateObject(TypeId type);

  /// All objects created with the given type, in creation order.
  const std::vector<Oid>& ObjectsOfType(TypeId type) const;

  /// --- Stored functions (base relations) ------------------------------

  /// Registers a stored function; its extent is an empty base relation.
  Result<RelationId> CreateStoredFunction(const std::string& name,
                                          FunctionSignature signature);

  /// Reserves a relation id and name for a derived function; the clauses
  /// live in the ObjectLog layer. Shares the id/name space with stored
  /// functions so dependency networks can reference both uniformly.
  Result<RelationId> CreateDerivedFunction(const std::string& name,
                                           FunctionSignature signature);

  /// Reserves a relation id for a foreign function (paper §3: functions
  /// written in a procedural language; [15]): its extent is produced by a
  /// C++ implementation registered in the ObjectLog layer, and changes are
  /// injected by the user (the paper's §8 "user defined differentials").
  Result<RelationId> CreateForeignFunction(const std::string& name,
                                           FunctionSignature signature);

  Result<RelationId> FindRelation(const std::string& name) const;
  /// Null if `id` is unknown or names a derived function.
  BaseRelation* GetBaseRelation(RelationId id);
  const BaseRelation* GetBaseRelation(RelationId id) const;
  bool IsDerived(RelationId id) const;
  bool IsForeign(RelationId id) const;
  /// Name of any registered relation; "?" if unknown.
  const std::string& RelationName(RelationId id) const;
  const FunctionSignature* GetSignature(RelationId id) const;

  /// Ids of all registered relations (stored and derived).
  std::vector<RelationId> AllRelationIds() const;

  /// Observed selectivities: written by `explain analyze`/`analyze rule`,
  /// consulted by the literal-ordering optimizer.
  StatsStore& stats() { return stats_; }
  const StatsStore& stats() const { return stats_; }

 private:
  struct RelationEntry {
    enum class Kind { kStored, kDerived, kForeign };
    std::string name;
    FunctionSignature signature;
    Kind kind = Kind::kStored;
    std::unique_ptr<BaseRelation> base;  // non-null only for kStored
  };

  TypeId next_type_id_ = 1;
  uint64_t next_oid_ = 1;
  RelationId next_relation_id_ = 1;

  std::unordered_map<std::string, TypeId> type_by_name_;
  std::unordered_map<TypeId, ObjectType> types_;
  std::unordered_map<TypeId, std::vector<Oid>> objects_by_type_;

  std::unordered_map<std::string, RelationId> relation_by_name_;
  std::unordered_map<RelationId, RelationEntry> relations_;

  StatsStore stats_;
};

}  // namespace deltamon

#endif  // DELTAMON_STORAGE_CATALOG_H_
