#include "storage/database.h"

#include <algorithm>

#include "obs/metrics.h"

namespace deltamon {

std::string UpdateEvent::ToString(const Catalog& catalog) const {
  std::string out = op == Op::kInsert ? "+(" : "-(";
  out += catalog.RelationName(relation);
  out += ", ";
  out += tuple.ToString();
  return out + ")";
}

Status Database::ApplyAndLog(RelationId rel, UpdateEvent::Op op,
                             const Tuple& t) {
  BaseRelation* base = catalog_.GetBaseRelation(rel);
  if (base == nullptr) {
    return Status::InvalidArgument("relation id " + std::to_string(rel) +
                                   " is not a stored function");
  }
  DELTAMON_RETURN_IF_ERROR(base->schema().TypeCheck(t));
  bool changed = op == UpdateEvent::Op::kInsert ? base->Insert(t)
                                                : base->Delete(t);
  if (!changed) return Status::OK();  // physical no-op: no event
  undo_log_.push_back(UpdateEvent{rel, op, t});
  ++stats_.events_logged;
  DELTAMON_OBS_COUNT("db.events_logged", 1);
  if (IsMonitored(rel)) {
    DeltaSet& delta = pending_deltas_[rel];
    if (op == UpdateEvent::Op::kInsert) {
      delta.ApplyInsert(t);
    } else {
      delta.ApplyDelete(t);
    }
  }
  return Status::OK();
}

Status Database::MaybeImmediateCheck() {
  // Immediate rule processing runs the check phase per *statement* (never
  // per physical event: a Set()'s internal delete+insert pair must not
  // expose its transient state), and never re-enters from rule actions.
  if (!immediate_ || in_check_phase_ || check_phase_ == nullptr) {
    return Status::OK();
  }
  if (!HasPendingChanges()) return Status::OK();
  in_check_phase_ = true;
  Status s = check_phase_(*this);
  in_check_phase_ = false;
  return s;
}

Status Database::Insert(RelationId rel, const Tuple& t) {
  DELTAMON_RETURN_IF_ERROR(ApplyAndLog(rel, UpdateEvent::Op::kInsert, t));
  return MaybeImmediateCheck();
}

Status Database::Delete(RelationId rel, const Tuple& t) {
  DELTAMON_RETURN_IF_ERROR(ApplyAndLog(rel, UpdateEvent::Op::kDelete, t));
  return MaybeImmediateCheck();
}

Status Database::Set(RelationId rel, const Tuple& args, const Tuple& results) {
  BaseRelation* base = catalog_.GetBaseRelation(rel);
  if (base == nullptr) {
    return Status::InvalidArgument("relation id " + std::to_string(rel) +
                                   " is not a stored function");
  }
  if (args.arity() + results.arity() != base->arity()) {
    return Status::TypeError("set " + base->name() + ": arity mismatch");
  }
  // Collect existing tuples with this argument prefix, then delete them.
  ScanPattern pattern(base->arity());
  for (size_t i = 0; i < args.arity(); ++i) pattern[i] = args[i];
  std::vector<Tuple> old_tuples;
  base->Scan(pattern, [&old_tuples](const Tuple& t) {
    old_tuples.push_back(t);
    return true;
  });
  for (const Tuple& t : old_tuples) {
    DELTAMON_RETURN_IF_ERROR(ApplyAndLog(rel, UpdateEvent::Op::kDelete, t));
  }
  DELTAMON_RETURN_IF_ERROR(
      ApplyAndLog(rel, UpdateEvent::Op::kInsert, args.Concat(results)));
  return MaybeImmediateCheck();
}

Status Database::InjectForeignDelta(RelationId rel, const DeltaSet& delta) {
  if (!catalog_.IsForeign(rel)) {
    return Status::InvalidArgument("relation '" + catalog_.RelationName(rel) +
                                   "' is not a foreign function");
  }
  if (IsMonitored(rel)) {
    DELTAMON_OBS_COUNT("db.foreign_delta_tuples", delta.size());
    pending_deltas_[rel].DeltaUnion(delta);
    DELTAMON_RETURN_IF_ERROR(MaybeImmediateCheck());
  }
  return Status::OK();
}

Status Database::ApplyOverlay(
    const std::unordered_map<RelationId, DeltaSet>& writes) {
  std::vector<RelationId> rels;
  rels.reserve(writes.size());
  for (const auto& [rel, overlay] : writes) rels.push_back(rel);
  std::sort(rels.begin(), rels.end());
  for (RelationId rel : rels) {
    const DeltaSet& overlay = writes.at(rel);
    for (const Tuple& t : SortedTuples(overlay.minus())) {
      DELTAMON_RETURN_IF_ERROR(ApplyAndLog(rel, UpdateEvent::Op::kDelete, t));
    }
    for (const Tuple& t : SortedTuples(overlay.plus())) {
      DELTAMON_RETURN_IF_ERROR(ApplyAndLog(rel, UpdateEvent::Op::kInsert, t));
    }
  }
  return Status::OK();
}

Status Database::CommitWithoutCheck() {
  DELTAMON_OBS_RECORD("db.tx_events", undo_log_.size());
  DELTAMON_OBS_GAUGE_SET("db.undo_log_size", 0);
  undo_log_.clear();
  pending_deltas_.clear();
  ++stats_.commits;
  DELTAMON_OBS_COUNT("db.commits", 1);
  return Status::OK();
}

Status Database::Commit() {
  // Timed end to end: the deferred check phase dominates commit latency,
  // which is exactly the number the paper's figures track.
  DELTAMON_OBS_SCOPED_TIMER(commit_timer, "db.commit_ns");
  if (check_phase_ != nullptr && !in_check_phase_) {
    in_check_phase_ = true;
    Status s = check_phase_(*this);
    in_check_phase_ = false;
    if (!s.ok()) return s;
  }
  DELTAMON_OBS_RECORD("db.tx_events", undo_log_.size());
  DELTAMON_OBS_GAUGE_SET("db.undo_log_size", 0);
  undo_log_.clear();
  pending_deltas_.clear();
  ++stats_.commits;
  DELTAMON_OBS_COUNT("db.commits", 1);
  return Status::OK();
}

Status Database::Rollback() {
  for (auto it = undo_log_.rbegin(); it != undo_log_.rend(); ++it) {
    BaseRelation* base = catalog_.GetBaseRelation(it->relation);
    if (base == nullptr) {
      return Status::Internal("undo log references unknown relation");
    }
    // Invert the logged operation; these compensating updates are not
    // themselves logged or monitored.
    if (it->op == UpdateEvent::Op::kInsert) {
      base->Delete(it->tuple);
    } else {
      base->Insert(it->tuple);
    }
  }
  DELTAMON_OBS_RECORD("db.tx_events", undo_log_.size());
  DELTAMON_OBS_GAUGE_SET("db.undo_log_size", 0);
  undo_log_.clear();
  pending_deltas_.clear();
  ++stats_.rollbacks;
  DELTAMON_OBS_COUNT("db.rollbacks", 1);
  return Status::OK();
}

void Database::MarkMonitored(RelationId rel) { ++monitor_counts_[rel]; }

void Database::UnmarkMonitored(RelationId rel) {
  auto it = monitor_counts_.find(rel);
  if (it == monitor_counts_.end()) return;
  if (--it->second <= 0) {
    monitor_counts_.erase(it);
    pending_deltas_.erase(rel);
  }
}

bool Database::HasPendingChanges() const {
  for (const auto& [rel, delta] : pending_deltas_) {
    if (!delta.empty()) return true;
  }
  return false;
}

std::unordered_map<RelationId, DeltaSet> Database::TakePendingDeltas() {
  std::unordered_map<RelationId, DeltaSet> out;
  out.swap(pending_deltas_);
  // Drop empty Δ-sets (fully cancelled updates trigger nothing).
  for (auto it = out.begin(); it != out.end();) {
    it = it->second.empty() ? out.erase(it) : std::next(it);
  }
#if DELTAMON_OBS_ENABLED
  if (obs::Enabled() && !out.empty()) {
    size_t total = 0;
    for (const auto& [rel, delta] : out) total += delta.size();
    DELTAMON_OBS_RECORD("db.delta_tuples_taken", total);
  }
#endif
  return out;
}

}  // namespace deltamon
