#ifndef DELTAMON_STORAGE_DATABASE_H_
#define DELTAMON_STORAGE_DATABASE_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/tuple.h"
#include "delta/delta_set.h"
#include "storage/catalog.h"

namespace deltamon {

/// One physical update event, as written to the logical undo/redo log
/// (paper §4.1).
struct UpdateEvent {
  enum class Op { kInsert, kDelete };
  RelationId relation = kInvalidRelationId;
  Op op = Op::kInsert;
  Tuple tuple;

  /// "+(name, tuple)" / "-(name, tuple)".
  std::string ToString(const Catalog& catalog) const;
};

/// The transactional in-memory database. A Database always has one open
/// transaction; updates apply immediately to storage and append to the
/// undo/redo log. Commit() runs the deferred check phase (installed by the
/// rule manager) and then forgets the log; Rollback() physically undoes
/// every logged event.
///
/// Δ-set accumulation (paper §4.1): relations marked *monitored* — the
/// influents of some activated rule condition — additionally fold each
/// physical event into a per-relation Δ-set via ∪Δ, so only net logical
/// changes survive. Updates to unmonitored relations carry no monitoring
/// overhead beyond the undo log append.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// --- Updates ---------------------------------------------------------

  /// Inserts `t` into stored relation `rel` (type-checked). Duplicate
  /// inserts are no-ops that generate no event.
  Status Insert(RelationId rel, const Tuple& t);

  /// Deletes `t` from `rel`; deleting an absent tuple is a no-op.
  Status Delete(RelationId rel, const Tuple& t);

  /// Function update `set f(args) = results`: deletes every existing tuple
  /// whose argument columns equal `args`, then inserts (args ++ results).
  /// Generates the paper's two-event sequence per replaced tuple.
  Status Set(RelationId rel, const Tuple& args, const Tuple& results);

  /// User-defined differential for a foreign function (paper §8): informs
  /// the monitor that the external extent of `rel` changed by `delta`.
  /// The change is folded into the pending Δ-sets like any update, but it
  /// is NOT transactional: the external world cannot be rolled back, so
  /// nothing is written to the undo log. The foreign implementation must
  /// already return the new extent when this is called.
  Status InjectForeignDelta(RelationId rel, const DeltaSet& delta);

  /// --- Transaction boundary --------------------------------------------

  /// Runs the deferred check phase (if installed), then makes all logged
  /// updates durable by clearing the log and pending Δ-sets. If the check
  /// phase fails the transaction stays open.
  Status Commit();

  /// Applies one transaction's buffered write overlay (per-relation net
  /// <Δ+, Δ−>) to storage: deletions then insertions, in sorted relation
  /// and tuple order so replay is deterministic. Each event goes through
  /// the normal apply-and-log path — undo logged, folded into the pending
  /// Δ-sets of monitored relations — but never triggers an immediate
  /// check: the group-commit leader batches several overlays into one
  /// check-phase wave (∪Δ before propagation, paper §4.5).
  Status ApplyOverlay(const std::unordered_map<RelationId, DeltaSet>& writes);

  /// Commit for callers that already ran the check phase themselves (the
  /// transaction manager's commit leader): clears the undo log and pending
  /// Δ-sets and counts the commit, without re-entering the check phase.
  Status CommitWithoutCheck();

  /// Physically undoes every logged event in reverse order and clears the
  /// log and pending Δ-sets.
  Status Rollback();

  /// Number of events in the current transaction's log.
  size_t LogSize() const { return undo_log_.size(); }
  const std::vector<UpdateEvent>& UndoLog() const { return undo_log_; }

  /// Installs the deferred rule check phase, invoked by Commit(). The rule
  /// manager owns the callback.
  void SetCheckPhase(std::function<Status(Database&)> check_phase) {
    check_phase_ = std::move(check_phase);
  }

  /// Immediate rule processing (paper §1: the technique "can also be used
  /// for immediate rule processing"): when enabled, the check phase runs
  /// after every update statement instead of waiting for Commit(). Updates
  /// performed by rule actions do not re-enter (the check phase loop
  /// already iterates to a fixpoint).
  void SetImmediateRuleProcessing(bool on) { immediate_ = on; }
  bool immediate_rule_processing() const { return immediate_; }

  /// --- Monitored relations (rule condition influents) -------------------

  /// Reference-counted: each activated rule marks its influents.
  void MarkMonitored(RelationId rel);
  void UnmarkMonitored(RelationId rel);
  bool IsMonitored(RelationId rel) const {
    return monitor_counts_.contains(rel);
  }

  /// Whether any monitored relation accumulated a non-empty Δ-set.
  bool HasPendingChanges() const;

  /// Moves out the accumulated Δ-sets of monitored base relations and
  /// resets the accumulators; the check phase calls this once per rule
  /// processing round so action-induced updates start a fresh round.
  std::unordered_map<RelationId, DeltaSet> TakePendingDeltas();

  /// Read-only view of the accumulated Δ-sets.
  const std::unordered_map<RelationId, DeltaSet>& PendingDeltas() const {
    return pending_deltas_;
  }

  /// --- Statistics (for benchmarks) --------------------------------------

  struct Stats {
    uint64_t events_logged = 0;
    uint64_t commits = 0;
    uint64_t rollbacks = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  Status ApplyAndLog(RelationId rel, UpdateEvent::Op op, const Tuple& t);
  /// Runs the check phase mid-transaction when immediate mode is on.
  Status MaybeImmediateCheck();

  Catalog catalog_;
  std::vector<UpdateEvent> undo_log_;
  std::unordered_map<RelationId, int> monitor_counts_;
  std::unordered_map<RelationId, DeltaSet> pending_deltas_;
  std::function<Status(Database&)> check_phase_;
  bool in_check_phase_ = false;
  bool immediate_ = false;
  Stats stats_;
};

}  // namespace deltamon

#endif  // DELTAMON_STORAGE_DATABASE_H_
