#include "storage/stats_store.h"

namespace deltamon {

void StatsStore::Record(RelationId relation, int role, int nbound,
                        uint64_t tried, uint64_t produced) {
  if (tried == 0) return;  // nothing attempted, nothing learned
  std::lock_guard<std::mutex> lock(mu_);
  Cell& cell = cells_[Key(relation, role, nbound)];
  cell.tried += tried;
  cell.produced += produced;
  count_.store(cells_.size(), std::memory_order_relaxed);
}

std::optional<double> StatsStore::Selectivity(RelationId relation, int role,
                                              int nbound) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cells_.find(Key(relation, role, nbound));
  if (it == cells_.end() || it->second.tried == 0) return std::nullopt;
  return static_cast<double>(it->second.produced) /
         static_cast<double>(it->second.tried);
}

void StatsStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  cells_.clear();
  count_.store(0, std::memory_order_relaxed);
}

size_t StatsStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cells_.size();
}

}  // namespace deltamon
