#ifndef DELTAMON_STORAGE_BASE_RELATION_H_
#define DELTAMON_STORAGE_BASE_RELATION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/tuple.h"
#include "common/value.h"

namespace deltamon {

/// Identifier of a relation (stored or derived) in a database. Base
/// relations and derived relations share one id space so that dependency
/// edges and Δ-set maps can be keyed uniformly.
using RelationId = uint32_t;
inline constexpr RelationId kInvalidRelationId = 0;

/// Declared type of one column of a relation. kNull means "any".
struct ColumnType {
  ValueKind kind = ValueKind::kNull;
  /// For kind == kObject: the required object type, or kInvalidTypeId for
  /// any object.
  TypeId object_type = kInvalidTypeId;

  /// Whether `v` conforms to this column type.
  bool Admits(const Value& v) const;
  std::string ToString() const;
};

/// Column types of a relation. A stored function f(a1,...,an) -> (r1,...,rm)
/// is stored as a relation of arity n+m with the argument columns first.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnType> columns)
      : columns_(std::move(columns)) {}

  size_t arity() const { return columns_.size(); }
  const ColumnType& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnType>& columns() const { return columns_; }

  /// Verifies arity and per-column type conformance of `t`.
  Status TypeCheck(const Tuple& t) const;

  std::string ToString() const;

 private:
  std::vector<ColumnType> columns_;
};

/// A partial-match pattern for scanning: one optional Value per column;
/// engaged entries must match exactly.
using ScanPattern = std::vector<std::optional<Value>>;

/// A stored base relation (an AMOS "stored function"): a set of typed
/// tuples with lazily built per-column hash indexes.
///
/// Mutations (Insert/Delete) are single-threaded by design — they happen in
/// the transaction's update statements, never during propagation. Concurrent
/// *reads* (Scan/Count/Contains) are safe, including the lazy index build a
/// cold indexed scan triggers: the per-column index pointer is published
/// with a double-checked atomic under a build mutex, so parallel propagation
/// workers can race on the first probe of a column without tearing. The
/// fast path stays one acquire load (free on x86).
class BaseRelation {
 public:
  BaseRelation(RelationId id, std::string name, Schema schema);

  BaseRelation(const BaseRelation&) = delete;
  BaseRelation& operator=(const BaseRelation&) = delete;
  ~BaseRelation();

  RelationId id() const { return id_; }
  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t arity() const { return schema_.arity(); }
  size_t size() const { return rows_.size(); }

  /// Adds `t` (must already be type-checked by the database layer).
  /// Returns true iff the relation changed (set semantics: duplicate
  /// inserts are physical no-ops and generate no event).
  bool Insert(const Tuple& t);

  /// Removes `t`; returns true iff it was present.
  bool Delete(const Tuple& t);

  bool Contains(const Tuple& t) const { return rows_.contains(t); }

  const TupleSet& rows() const { return rows_; }

  /// Invokes `fn` for every tuple matching `pattern` (empty pattern = full
  /// scan); `fn` returning false stops the scan early. Uses a hash index
  /// when some pattern column is bound, building it on first use.
  void Scan(const ScanPattern& pattern,
            const std::function<bool(const Tuple&)>& fn) const;

  /// Number of tuples matching `pattern` (for tests and cost estimation).
  size_t Count(const ScanPattern& pattern) const;

  /// Forces creation of the hash index on `column` (otherwise built lazily
  /// on the first indexed scan that binds it). Safe to race from readers.
  void EnsureIndex(size_t column) const;

  /// True if an index on `column` has been built.
  bool HasIndex(size_t column) const {
    return column < num_columns_ && Index(column) != nullptr;
  }

  /// Commit version of the last committed transaction that wrote this
  /// relation (0 = never written by a versioned commit). Stamped by the
  /// transaction manager's commit leader under the exclusive engine lock
  /// and read by validation under the same lock, so a plain field
  /// suffices; legacy single-session paths never touch it.
  uint64_t last_commit_version() const { return last_commit_version_; }
  void set_last_commit_version(uint64_t v) { last_commit_version_ = v; }

 private:
  /// Maps column values to dense positions in rows_ (TupleSet stores its
  /// elements contiguously). Positions are append-only stable; Delete's
  /// swap-remove moves the last tuple, so Delete patches its entries.
  using ColumnIndex = std::unordered_multimap<Value, uint32_t, ValueHash>;

  static bool Matches(const Tuple& t, const ScanPattern& pattern);

  ColumnIndex* Index(size_t column) const {
    return indexes_[column].load(std::memory_order_acquire);
  }

  RelationId id_;
  std::string name_;
  Schema schema_;
  size_t num_columns_ = 0;
  TupleSet rows_;
  /// indexes_[c] maps column-c values to dense positions in rows_. Built
  /// lazily, hence mutable; published atomically (see class comment).
  /// Owned: freed in the dtor.
  mutable std::unique_ptr<std::atomic<ColumnIndex*>[]> indexes_;
  mutable std::mutex index_build_mu_;
  uint64_t last_commit_version_ = 0;
};

}  // namespace deltamon

#endif  // DELTAMON_STORAGE_BASE_RELATION_H_
