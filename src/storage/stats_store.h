#ifndef DELTAMON_STORAGE_STATS_STORE_H_
#define DELTAMON_STORAGE_STATS_STORE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "storage/base_relation.h"

namespace deltamon {

/// Observed selectivity statistics, fed back from `explain analyze` /
/// `analyze rule` profiles and consulted by the greedy literal-ordering
/// optimizer (objectlog::Evaluator::OrderBody) as its cost estimate.
///
/// Keyed by (relation, role, bound-position count): the same relation
/// probed under different binding patterns has very different
/// selectivities, and the role separates Δ-side reads from full extents.
/// Cells accumulate (tried, produced) sums so repeated ANALYZE runs
/// converge instead of thrashing.
///
/// Mutex-guarded: recording happens on the session thread but lookups may
/// come from propagation workers ordering clause bodies.
class StatsStore {
 public:
  /// Folds in one observation: `tried` candidate tuples examined and
  /// `produced` bindings that survived. An observation with nothing tried
  /// carries no signal and is ignored (the rows-in = 0 case).
  void Record(RelationId relation, int role, int nbound, uint64_t tried,
              uint64_t produced);

  /// Cumulative observed selectivity produced/tried for the key, or
  /// nullopt when nothing has been recorded — the optimizer then falls
  /// back to pure boundness scoring.
  std::optional<double> Selectivity(RelationId relation, int role,
                                    int nbound) const;

  void Clear();
  size_t size() const;

  /// Lock-free emptiness probe for the optimizer's hot path: ordering a
  /// clause body consults the store per literal, and until the first
  /// ANALYZE has recorded anything there is no point paying the mutex.
  bool empty() const { return count_.load(std::memory_order_relaxed) == 0; }

 private:
  /// (relation, role, nbound) packed into one map key; role and nbound
  /// are tiny enums/counts, 8 bits each is generous.
  static uint64_t Key(RelationId relation, int role, int nbound) {
    return (static_cast<uint64_t>(relation) << 16) |
           (static_cast<uint64_t>(role & 0xff) << 8) |
           static_cast<uint64_t>(nbound & 0xff);
  }

  struct Cell {
    uint64_t tried = 0;
    uint64_t produced = 0;
  };

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Cell> cells_;
  std::atomic<size_t> count_{0};
};

}  // namespace deltamon

#endif  // DELTAMON_STORAGE_STATS_STORE_H_
