#include "storage/base_relation.h"

#include <memory>

namespace deltamon {

bool ColumnType::Admits(const Value& v) const {
  if (kind == ValueKind::kNull) return true;  // "any"
  if (v.kind() != kind) {
    // Ints are acceptable where doubles are declared (numeric widening).
    if (kind == ValueKind::kDouble && v.is_int()) return true;
    return false;
  }
  if (kind == ValueKind::kObject && object_type != kInvalidTypeId) {
    return v.AsObject().type == object_type;
  }
  return true;
}

std::string ColumnType::ToString() const {
  if (kind == ValueKind::kObject && object_type != kInvalidTypeId) {
    return "object<" + std::to_string(object_type) + ">";
  }
  return ValueKindName(kind);
}

Status Schema::TypeCheck(const Tuple& t) const {
  if (t.arity() != arity()) {
    return Status::TypeError("tuple arity " + std::to_string(t.arity()) +
                             " does not match schema arity " +
                             std::to_string(arity()));
  }
  for (size_t i = 0; i < arity(); ++i) {
    if (!columns_[i].Admits(t[i])) {
      return Status::TypeError("column " + std::to_string(i) + " expects " +
                               columns_[i].ToString() + ", got " +
                               t[i].ToString());
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].ToString();
  }
  return out + ")";
}

BaseRelation::BaseRelation(RelationId id, std::string name, Schema schema)
    : id_(id),
      name_(std::move(name)),
      schema_(std::move(schema)),
      num_columns_(schema_.arity()),
      indexes_(new std::atomic<ColumnIndex*>[schema_.arity()]) {
  for (size_t c = 0; c < num_columns_; ++c) {
    indexes_[c].store(nullptr, std::memory_order_relaxed);
  }
}

BaseRelation::~BaseRelation() {
  for (size_t c = 0; c < num_columns_; ++c) {
    delete indexes_[c].load(std::memory_order_relaxed);
  }
}

bool BaseRelation::Insert(const Tuple& t) {
  auto [it, inserted] = rows_.insert(t);
  if (!inserted) return false;
  // New elements always append, so the new dense position is size()-1.
  const auto pos = static_cast<uint32_t>(rows_.size() - 1);
  const Tuple& stored = *it;
  for (size_t c = 0; c < num_columns_; ++c) {
    ColumnIndex* index = Index(c);
    if (index != nullptr) index->emplace(stored[c], pos);
  }
  return true;
}

bool BaseRelation::Delete(const Tuple& t) {
  const size_t i = rows_.IndexOf(t);
  if (i == TupleSet::npos) return false;
  const size_t last = rows_.size() - 1;
  for (size_t c = 0; c < num_columns_; ++c) {
    ColumnIndex* index = Index(c);
    if (index == nullptr) continue;
    // Drop the erased tuple's entry...
    auto range = index->equal_range(rows_.At(i)[c]);
    for (auto e = range.first; e != range.second; ++e) {
      if (e->second == i) {
        index->erase(e);
        break;
      }
    }
    // ...and repoint the last tuple's entry, which erase() swap-moves
    // into position i.
    if (i != last) {
      range = index->equal_range(rows_.At(last)[c]);
      for (auto e = range.first; e != range.second; ++e) {
        if (e->second == last) {
          e->second = static_cast<uint32_t>(i);
          break;
        }
      }
    }
  }
  rows_.erase(rows_.begin() + static_cast<ptrdiff_t>(i));
  return true;
}

bool BaseRelation::Matches(const Tuple& t, const ScanPattern& pattern) {
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (pattern[i].has_value() && !(t[i] == *pattern[i])) return false;
  }
  return true;
}

void BaseRelation::EnsureIndex(size_t column) const {
  if (column >= num_columns_ || Index(column) != nullptr) return;
  // Double-checked build: concurrent readers may race to here on the first
  // indexed scan of a cold column; the mutex makes exactly one of them
  // build, and the release store publishes the fully built index.
  std::lock_guard<std::mutex> lock(index_build_mu_);
  if (indexes_[column].load(std::memory_order_relaxed) != nullptr) return;
  auto index = std::make_unique<ColumnIndex>();
  index->reserve(rows_.size());
  for (size_t i = 0; i < rows_.size(); ++i) {
    index->emplace(rows_.At(i)[column], static_cast<uint32_t>(i));
  }
  indexes_[column].store(index.release(), std::memory_order_release);
}

void BaseRelation::Scan(const ScanPattern& pattern,
                        const std::function<bool(const Tuple&)>& fn) const {
  // Fast path: exact-match pattern on all columns.
  if (!pattern.empty() && pattern.size() == arity()) {
    bool all_bound = true;
    for (const auto& p : pattern) {
      if (!p.has_value()) {
        all_bound = false;
        break;
      }
    }
    if (all_bound) {
      std::vector<Value> vals;
      vals.reserve(arity());
      for (const auto& p : pattern) vals.push_back(*p);
      Tuple probe(std::move(vals));
      if (rows_.contains(probe)) fn(probe);
      return;
    }
  }
  // Indexed path: use the first bound column.
  for (size_t c = 0; c < pattern.size(); ++c) {
    if (!pattern[c].has_value()) continue;
    EnsureIndex(c);
    auto range = Index(c)->equal_range(*pattern[c]);
    for (auto it = range.first; it != range.second; ++it) {
      const Tuple& t = rows_.At(it->second);
      if (Matches(t, pattern)) {
        if (!fn(t)) return;
      }
    }
    return;
  }
  // Full scan.
  for (const Tuple& t : rows_) {
    if (!fn(t)) return;
  }
}

size_t BaseRelation::Count(const ScanPattern& pattern) const {
  size_t n = 0;
  Scan(pattern, [&n](const Tuple&) {
    ++n;
    return true;
  });
  return n;
}

}  // namespace deltamon
