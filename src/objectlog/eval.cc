#include "objectlog/eval.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "obs/span.h"

/// Per-literal profiler hook, expanded inside EvalBodyImpl<kProfiled>:
/// `slot` is the current literal's profile slot. The whole statement sits
/// behind `if constexpr (kProfiled)`, so the detached instantiation — the
/// one every ordinary transaction runs — carries zero residue; under
/// DELTAMON_OBS=OFF it compiles to nothing in both instantiations.
#if DELTAMON_OBS_ENABLED
#define DELTAMON_PROF(stmt)    \
  do {                         \
    if constexpr (kProfiled) { \
      if (slot != nullptr) {   \
        stmt;                  \
      }                        \
    }                          \
  } while (false)
#else
#define DELTAMON_PROF(stmt) \
  do {                      \
  } while (false)
#endif

namespace deltamon::objectlog {

TupleSet* EvalCache::Find(RelationId rel, EvalState state) {
  auto it = extents_.find(Key(rel, state));
  return it == extents_.end() ? nullptr : &it->second;
}

TupleSet* EvalCache::Insert(RelationId rel, EvalState state, TupleSet extent) {
  auto [it, _] = extents_.insert_or_assign(Key(rel, state), std::move(extent));
  return &it->second;
}

BaseRelation* EvalCache::FindIndexed(RelationId rel, EvalState state) {
  auto it = indexed_.find(Key(rel, state));
  if (it == indexed_.end()) return nullptr;
  ++indexed_reuses_;
  return it->second.extent.get();
}

BaseRelation* EvalCache::InsertIndexed(RelationId rel, EvalState state,
                                       std::unique_ptr<BaseRelation> extent,
                                       bool retainable) {
  ++indexed_inserts_;
  auto [it, _] = indexed_.insert_or_assign(
      Key(rel, state), IndexedEntry{std::move(extent), retainable});
  return it->second.extent.get();
}

void EvalCache::BeginWave(
    const std::function<bool(RelationId, EvalState)>& drop) {
  extents_.clear();
  for (auto it = indexed_.begin(); it != indexed_.end();) {
    auto rel = static_cast<RelationId>(it->first >> 32);
    auto state = static_cast<EvalState>(it->first & 0xffffffffu);
    if (!it->second.retainable || drop(rel, state)) {
      it = indexed_.erase(it);
    } else {
      ++it;
    }
  }
}

Evaluator::Evaluator(const Database& db, const DerivedRegistry& registry,
                     StateContext ctx, EvalCache* cache)
    : db_(db),
      registry_(registry),
      ctx_(ctx),
      cache_(cache != nullptr ? cache : &own_cache_) {}

Evaluator::~Evaluator() {
  DELTAMON_OBS_COUNT("eval.clause_evals", stats_.clause_evals);
  DELTAMON_OBS_COUNT("eval.literal_probes", stats_.literal_probes);
  DELTAMON_OBS_COUNT("eval.tuples_examined", stats_.tuples_examined);
  DELTAMON_OBS_COUNT("eval.bindings_produced", stats_.bindings_produced);
}

Result<Value> Evaluator::TermValue(const Term& term, const Env& env) const {
  if (term.is_const()) return term.constant;
  if (term.var >= 0 && static_cast<size_t>(term.var) < env.size() &&
      env[term.var].has_value()) {
    return *env[term.var];
  }
  return Status::Internal("unbound variable V" + std::to_string(term.var) +
                          " evaluated too early");
}

std::vector<size_t> Evaluator::OrderBody(const std::vector<Literal>& body,
                                         int num_vars) {
  return OrderBody(body, num_vars, std::vector<bool>(std::max(num_vars, 0)));
}

std::vector<size_t> Evaluator::OrderBody(
    const std::vector<Literal>& body, int num_vars,
    const std::vector<bool>& initial_bound) {
  return OrderBody(body, num_vars, initial_bound, nullptr);
}

std::vector<size_t> Evaluator::OrderBody(
    const std::vector<Literal>& body, int num_vars,
    const std::vector<bool>& initial_bound, const StatsStore* stats) {
  // Until the first ANALYZE records something, the store answers nullopt
  // for every key; skip the per-literal mutexed lookups entirely.
  if (stats != nullptr && stats->empty()) stats = nullptr;
  std::vector<bool> bound = initial_bound;
  bound.resize(static_cast<size_t>(std::max(num_vars, 0)), false);
  std::vector<bool> placed(body.size(), false);
  std::vector<size_t> order;
  order.reserve(body.size());

  auto term_bound = [&bound](const Term& t) {
    return t.is_const() || (t.var >= 0 && bound[t.var]);
  };
  auto bind_vars = [&bound](const Literal& l) {
    for (const Term& t : l.args) {
      if (t.is_var()) bound[t.var] = true;
    }
  };

  // Δ-role literals are the wave-front generators of a partial
  // differential: always execute them first (the optimizer "assumes few
  // changes to a single influent", paper §1).
  for (size_t i = 0; i < body.size(); ++i) {
    if (body[i].kind == Literal::Kind::kRelation &&
        body[i].role != RelationRole::kExtent) {
      order.push_back(i);
      placed[i] = true;
      bind_vars(body[i]);
    }
  }

  while (order.size() < body.size()) {
    constexpr int kNotEvaluable = std::numeric_limits<int>::min();
    int best = -1;
    int best_score = kNotEvaluable;
    for (size_t i = 0; i < body.size(); ++i) {
      if (placed[i]) continue;
      const Literal& l = body[i];
      int score = kNotEvaluable;
      switch (l.kind) {
        case Literal::Kind::kCompare:
          if (term_bound(l.args[0]) && term_bound(l.args[1])) {
            score = 100;  // pure filter
          } else if (l.cmp == CompareOp::kEq &&
                     (term_bound(l.args[0]) || term_bound(l.args[1]))) {
            score = 90;  // equality binder
          }
          break;
        case Literal::Kind::kArith:
          if (term_bound(l.args[1]) && term_bound(l.args[2])) score = 95;
          break;
        case Literal::Kind::kRelation: {
          size_t nbound = 0;
          for (const Term& t : l.args) {
            if (term_bound(t)) ++nbound;
          }
          if (l.negated) {
            // Evaluable once every shared variable is bound; variables
            // occurring only in this literal are wildcards (validated by
            // ValidateClause).
            bool ready = true;
            for (const Term& t : l.args) {
              if (term_bound(t)) continue;
              int uses = 0;
              for (const Literal& other : body) {
                for (const Term& ot : other.args) {
                  if (ot.is_var() && ot.var == t.var) ++uses;
                }
              }
              if (uses > 1) {
                ready = false;
                break;
              }
            }
            if (ready) score = 85;  // absence filter
          } else if (nbound == l.args.size()) {
            score = 80;  // fully bound probe
          } else if (nbound > 0) {
            score = 40 + static_cast<int>(nbound);  // indexed probe
            if (stats != nullptr) {
              // Observed selectivity beats raw boundness within the probe
              // band: a probe that proved to pass 1-in-2^k candidates
              // scores 40+k, clamped so it stays below fully-bound probes.
              std::optional<double> sel = stats->Selectivity(
                  l.relation, static_cast<int>(l.role),
                  static_cast<int>(nbound));
              if (sel.has_value()) {
                double s = std::clamp(*sel, 1e-12, 1.0);
                int boost = static_cast<int>(std::lround(-std::log2(s)));
                score = 40 + std::clamp(boost, 0, 39);
              }
            }
          } else {
            score = 0;  // full scan, last resort
          }
          break;
        }
      }
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(i);
      }
    }
    if (best < 0 || best_score == kNotEvaluable) {
      // Unsafe clause (should have been rejected by ValidateClause); fall
      // back to textual order for the remainder.
      for (size_t i = 0; i < body.size(); ++i) {
        if (!placed[i]) {
          order.push_back(i);
          placed[i] = true;
        }
      }
      break;
    }
    placed[best] = true;
    order.push_back(best);
    const Literal& l = body[best];
    if (l.kind == Literal::Kind::kRelation && !l.negated) {
      bind_vars(l);
    } else if (l.kind == Literal::Kind::kArith) {
      if (l.args[0].is_var()) bound[l.args[0].var] = true;
    } else if (l.kind == Literal::Kind::kCompare && l.cmp == CompareOp::kEq) {
      bind_vars(l);
    }
  }
  return order;
}

double Evaluator::ExtentEstimate(RelationId rel) const {
  if (const BaseRelation* base = db_.catalog().GetBaseRelation(rel)) {
    return static_cast<double>(base->size());
  }
  if (const BaseRelation* view = ctx_.ViewFor(rel)) {
    return static_cast<double>(view->size());
  }
  // Derived relation whose extent would need materializing to count: a
  // small nominal size keeps the chained estimates finite and comparable.
  return 10.0;
}

obs::ClauseProfile* Evaluator::BeginClauseProfile(const Clause& clause) {
#if DELTAMON_OBS_ENABLED
  if (profiler_ == nullptr) return nullptr;
  const Catalog& catalog = db_.catalog();
  const std::string& label = clause.profile_label.empty()
                                 ? catalog.RelationName(clause.head_relation)
                                 : clause.profile_label;
  obs::ClauseProfile* cp = profiler_->BeginClause(label);
  ++cp->invocations;
  if (!cp->slots.empty()) return cp;

  // First sight: fill the static slot metadata from the canonical
  // (no-prebound) order. Every worker derives the same values — the order
  // is a pure function of the clause and the stats fixed for this wave —
  // so the serial merge can keep either copy.
  cp->clause_text = clause.ToString(catalog);
  cp->slots.resize(clause.body.size());
  size_t nvars = static_cast<size_t>(std::max(clause.num_vars, 0));
  std::vector<size_t> order = OrderBody(clause.body, clause.num_vars,
                                        std::vector<bool>(nvars),
                                        &catalog.stats());
  std::vector<bool> bound(nvars, false);
  auto term_bound = [&bound](const Term& t) {
    return t.is_const() || (t.var >= 0 && bound[t.var]);
  };
  double est = 1.0;  // estimated bindings flowing into the next step
  for (size_t rank = 0; rank < order.size(); ++rank) {
    const Literal& l = clause.body[order[rank]];
    obs::LiteralProfile& slot = cp->slots[order[rank]];
    slot.display_rank = static_cast<int>(rank);
    slot.text = l.ToString(catalog, clause.var_names);
    switch (l.kind) {
      case Literal::Kind::kCompare: {
        bool filter = term_bound(l.args[0]) && term_bound(l.args[1]);
        slot.access = "compare";
        if (filter) {
          est *= 0.5;  // the classical half-pass guess for a filter
        } else if (l.cmp == CompareOp::kEq) {
          for (const Term& t : l.args) {
            if (t.is_var()) bound[t.var] = true;  // equality binder
          }
        }
        break;
      }
      case Literal::Kind::kArith:
        slot.access = "arith";
        if (l.args[0].is_var()) bound[l.args[0].var] = true;
        break;
      case Literal::Kind::kRelation: {
        size_t nbound = 0;
        for (const Term& t : l.args) {
          if (term_bound(t)) ++nbound;
        }
        slot.relation = l.relation;
        slot.role = static_cast<int>(l.role);
        slot.nbound = static_cast<int>(nbound);
        if (l.role != RelationRole::kExtent) {
          // Δ-side generator: the optimizer assumes few changes (§1), so
          // the chained estimate stays at ~1 row per invocation.
          slot.access =
              l.role == RelationRole::kDeltaPlus ? "delta+" : "delta-";
          for (const Term& t : l.args) {
            if (t.is_var()) bound[t.var] = true;
          }
        } else if (l.negated) {
          slot.access = "anti";
          est *= 0.5;  // absence check: same half-pass filter guess
        } else {
          double extent = ExtentEstimate(l.relation);
          std::optional<double> observed = catalog.stats().Selectivity(
              l.relation, static_cast<int>(l.role),
              static_cast<int>(nbound));
          if (nbound == 0) {
            slot.access = "scan";
            est *= observed.has_value() ? extent * (*observed) : extent;
          } else {
            // Default per-bound-position selectivity 0.1 when nothing has
            // been observed yet.
            double sel = observed.value_or(
                std::pow(0.1, static_cast<double>(nbound)));
            double fanout = extent * sel;
            if (nbound == l.args.size()) {
              slot.access = "probe/all";
              fanout = std::min(fanout, 1.0);
            } else {
              slot.access = "probe/" + std::to_string(nbound);
            }
            est *= fanout;
          }
          for (const Term& t : l.args) {
            if (t.is_var()) bound[t.var] = true;
          }
        }
        break;
      }
    }
    slot.est_rows = est;  // estimated rows leaving this step per invocation
  }
  return cp;
#else
  (void)clause;
  return nullptr;
#endif
}

Status Evaluator::ScanRelation(RelationId rel, EvalState state,
                               const ScanPattern& pattern,
                               const std::function<bool(const Tuple&)>& fn) {
  ++stats_.literal_probes;
  const BaseRelation* stored = db_.catalog().GetBaseRelation(rel);
  const BaseRelation* base = stored;
  if (base == nullptr) base = ctx_.ViewFor(rel);  // materialized view
  if (base != nullptr) {
    if (state == EvalState::kNew) {
      // Transactional read of a stored relation: the overlay shadows the
      // shared store (buffered deletes hidden, buffered inserts appended)
      // and the probe pattern joins the read footprint. Materialized views
      // are propagation-internal and never transactional.
      const DeltaSet* overlay = nullptr;
      if (ctx_.txn != nullptr && stored != nullptr) {
        ctx_.txn->RecordScan(rel, pattern);
        overlay = ctx_.txn->OverlayFor(rel);
      }
      if (overlay != nullptr && !overlay->empty()) {
        bool keep_going = true;
        base->Scan(pattern, [&](const Tuple& t) {
          if (overlay->minus().contains(t)) return true;  // buffered delete
          ++stats_.tuples_examined;
          keep_going = fn(t);
          return keep_going;
        });
        if (keep_going) {
          for (const Tuple& t : overlay->plus()) {
            if (!TupleMatchesPattern(t, pattern)) continue;
            ++stats_.tuples_examined;
            if (!fn(t)) break;
          }
        }
        return Status::OK();
      }
      base->Scan(pattern, [&](const Tuple& t) {
        ++stats_.tuples_examined;
        return fn(t);
      });
      return Status::OK();
    }
    // OLD state by logical rollback: new tuples minus Δ+, plus Δ−.
    const DeltaSet* delta = ctx_.DeltaFor(rel);
    if (delta == nullptr || delta->empty()) {
      base->Scan(pattern, [&](const Tuple& t) {
        ++stats_.tuples_examined;
        return fn(t);
      });
      return Status::OK();
    }
    bool keep_going = true;
    base->Scan(pattern, [&](const Tuple& t) {
      if (delta->plus().contains(t)) return true;  // not present in OLD
      ++stats_.tuples_examined;
      keep_going = fn(t);
      return keep_going;
    });
    if (keep_going) {
      for (const Tuple& t : delta->minus()) {
        bool match = true;
        for (size_t i = 0; i < pattern.size(); ++i) {
          if (pattern[i].has_value() && !(t[i] == *pattern[i])) {
            match = false;
            break;
          }
        }
        if (!match) continue;
        ++stats_.tuples_examined;
        if (!fn(t)) break;
      }
    }
    return Status::OK();
  }

  // Foreign functions (paper §3, [15]): extent from the registered C++
  // implementation; OLD state by rolling back the user-injected Δ-set,
  // exactly as for stored relations.
  if (const ForeignImpl* impl = registry_.GetForeign(rel)) {
    auto matches = [&pattern](const Tuple& t) {
      for (size_t i = 0; i < pattern.size(); ++i) {
        if (pattern[i].has_value() && !(t[i] == *pattern[i])) return false;
      }
      return true;
    };
    const DeltaSet* delta =
        state == EvalState::kOld ? ctx_.DeltaFor(rel) : nullptr;
    bool keep_going = true;
    DELTAMON_RETURN_IF_ERROR((*impl)(pattern, [&](const Tuple& t) {
      if (!matches(t)) return true;  // impl may ignore the pattern
      if (delta != nullptr && delta->plus().contains(t)) return true;
      ++stats_.tuples_examined;
      keep_going = fn(t);
      return keep_going;
    }));
    if (delta != nullptr && keep_going) {
      for (const Tuple& t : delta->minus()) {
        if (!matches(t)) continue;
        ++stats_.tuples_examined;
        if (!fn(t)) break;
      }
    }
    return Status::OK();
  }

  // Aggregate views (§8 extension).
  if (const AggregateDef* agg = registry_.GetAggregate(rel)) {
    return ScanAggregate(rel, *agg, state, pattern, fn);
  }
  // Derived relation.
  if (!registry_.IsDefined(rel)) {
    return Status::NotFound("relation id " + std::to_string(rel) +
                            " ('" + db_.catalog().RelationName(rel) +
                            "') has neither storage nor clauses");
  }
  // Recursive relations (linear recursion extension): always evaluated by
  // fixpoint materialization — the probe path would recurse through the
  // self-reference without a growing extent to terminate on.
  if (registry_.IsRecursive(rel)) {
    DELTAMON_ASSIGN_OR_RETURN(const BaseRelation* extent,
                              FixpointMaterialize(rel, state));
    extent->Scan(pattern, [&](const Tuple& t) {
      ++stats_.tuples_examined;
      return fn(t);
    });
    return Status::OK();
  }

  // Probe path: with bound pattern positions, push the bindings into the
  // definition instead of materializing the whole view — a point/range
  // query over the (indexed) base relations. Without this, probing a view
  // once per outer tuple would cost O(|view|) each time.
  bool has_bound = false;
  for (const auto& p : pattern) {
    if (p.has_value()) {
      has_bound = true;
      break;
    }
  }
  TupleSet* extent = has_bound ? nullptr : cache_->Find(rel, state);
  if (has_bound && cache_->Find(rel, state) != nullptr) {
    // Already materialized earlier in this wave: cheaper to reuse it than
    // to re-derive (fall through to the filtering loop below).
    extent = cache_->Find(rel, state);
  } else if (has_bound) {
    const std::vector<Clause>* clauses = registry_.GetClauses(rel);
    std::optional<EvalState> override_state;
    if (state == EvalState::kOld) override_state = EvalState::kOld;
    TupleSet results;  // dedup across clauses and witnesses
    for (const Clause& clause : *clauses) {
      ++stats_.clause_evals;
      Env env(clause.num_vars);
      bool feasible = true;
      for (size_t i = 0; i < clause.head_args.size() && feasible; ++i) {
        if (!pattern[i].has_value()) continue;
        const Term& h = clause.head_args[i];
        if (h.is_const()) {
          feasible = h.constant == *pattern[i];
        } else if (env[h.var].has_value()) {
          feasible = *env[h.var] == *pattern[i];
        } else {
          env[h.var] = *pattern[i];
        }
      }
      if (!feasible) continue;
      std::vector<bool> prebound(clause.num_vars, false);
      for (int v = 0; v < clause.num_vars; ++v) {
        prebound[v] = env[v].has_value();
      }
      std::vector<size_t> order = OrderBody(clause.body, clause.num_vars,
                                            prebound, &db_.catalog().stats());
      bool stop = false;
      auto emit = [&](const Env& e) -> Status {
        std::vector<Value> vals;
        vals.reserve(clause.head_args.size());
        for (const Term& t : clause.head_args) {
          DELTAMON_ASSIGN_OR_RETURN(Value v, TermValue(t, e));
          vals.push_back(std::move(v));
        }
        Tuple t(std::move(vals));
        // Unbound-head positions of this clause could still mismatch a
        // repeated pattern value; the final filter below handles that.
        results.insert(std::move(t));
        return Status::OK();
      };
      DELTAMON_RETURN_IF_ERROR(EvalBody(clause, order, 0, env, override_state,
                                        emit, &stop,
                                        BeginClauseProfile(clause)));
    }
    for (const Tuple& t : results) {
      bool match = true;
      for (size_t i = 0; i < pattern.size(); ++i) {
        if (pattern[i].has_value() && !(t[i] == *pattern[i])) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      ++stats_.tuples_examined;
      if (!fn(t)) break;
    }
    return Status::OK();
  }
  if (extent == nullptr) {
    TupleSet materialized;
    DELTAMON_RETURN_IF_ERROR(Evaluate(rel, state, &materialized));
    extent = cache_->Insert(rel, state, std::move(materialized));
  }
  for (const Tuple& t : *extent) {
    bool match = true;
    for (size_t i = 0; i < pattern.size(); ++i) {
      if (pattern[i].has_value() && !(t[i] == *pattern[i])) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    ++stats_.tuples_examined;
    if (!fn(t)) break;
  }
  return Status::OK();
}

Result<bool> Evaluator::Contains(RelationId rel, EvalState state,
                                 const Tuple& t) {
  const BaseRelation* stored = db_.catalog().GetBaseRelation(rel);
  const BaseRelation* base = stored;
  if (base == nullptr) base = ctx_.ViewFor(rel);
  if (base != nullptr) {
    if (state == EvalState::kNew) {
      if (ctx_.txn != nullptr && stored != nullptr) {
        ctx_.txn->RecordPointRead(rel, t);
        return ctx_.txn->ViewContains(*stored, rel, t);
      }
      return base->Contains(t);
    }
    const DeltaSet* delta = ctx_.DeltaFor(rel);
    if (delta == nullptr || delta->empty()) return base->Contains(t);
    if (delta->minus().contains(t)) return true;
    return base->Contains(t) && !delta->plus().contains(t);
  }
  // Derived: use the memoized extent when available, otherwise run a point
  // query without materializing.
  TupleSet* extent = cache_->Find(rel, state);
  if (extent != nullptr) return extent->contains(t);
  return Derivable(rel, state, t);
}

namespace {

#if DELTAMON_OBS_ENABLED
/// Charges the enclosing EvalBody step's wall time to its profile slot.
/// Inclusive: deeper steps run inside this scope, so a literal's time
/// covers everything its bindings triggered downstream.
class ProfSlotTimer {
 public:
  explicit ProfSlotTimer(obs::LiteralProfile* slot)
      : slot_(slot),
        start_(slot == nullptr ? std::chrono::steady_clock::time_point{}
                               : std::chrono::steady_clock::now()) {}
  ProfSlotTimer(const ProfSlotTimer&) = delete;
  ProfSlotTimer& operator=(const ProfSlotTimer&) = delete;
  ~ProfSlotTimer() {
    if (slot_ == nullptr) return;
    auto elapsed = std::chrono::steady_clock::now() - start_;
    slot_->time_ns += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count());
  }

 private:
  obs::LiteralProfile* slot_;
  std::chrono::steady_clock::time_point start_;
};

/// Stand-in for ProfSlotTimer in the unprofiled EvalBodyImpl
/// instantiation: same shape, no members, no clock reads.
struct NoopSlotTimer {
  explicit NoopSlotTimer(obs::LiteralProfile*) {}
};
#endif  // DELTAMON_OBS_ENABLED

}  // namespace

Status Evaluator::EvalBody(const Clause& clause,
                           const std::vector<size_t>& order, size_t step,
                           Env& env, std::optional<EvalState> state_override,
                           const std::function<Status(const Env&)>& emit,
                           bool* stop, obs::ClauseProfile* prof) {
#if DELTAMON_OBS_ENABLED
  if (prof != nullptr) {
    return EvalBodyImpl<true>(clause, order, step, env, state_override, emit,
                              stop, prof);
  }
#endif
  return EvalBodyImpl<false>(clause, order, step, env, state_override, emit,
                             stop, prof);
}

template <bool kProfiled>
Status Evaluator::EvalBodyImpl(const Clause& clause,
                               const std::vector<size_t>& order, size_t step,
                               Env& env,
                               std::optional<EvalState> state_override,
                               const std::function<Status(const Env&)>& emit,
                               bool* stop, [[maybe_unused]] obs::ClauseProfile* prof) {
  if (*stop) return Status::OK();
  if (step == order.size()) return emit(env);
  const Literal& l = clause.body[order[step]];
#if DELTAMON_OBS_ENABLED
  [[maybe_unused]] obs::LiteralProfile* slot = nullptr;
  if constexpr (kProfiled) slot = &prof->slots[order[step]];
  std::conditional_t<kProfiled, ProfSlotTimer, NoopSlotTimer> slot_timer(
      slot);
  DELTAMON_PROF(++slot->rows_in);
#endif

  switch (l.kind) {
    case Literal::Kind::kCompare: {
      bool b0 = l.args[0].is_const() || env[l.args[0].var].has_value();
      bool b1 = l.args[1].is_const() || env[l.args[1].var].has_value();
      if (l.cmp == CompareOp::kEq && b0 != b1) {
        // Equality binder: bind the unbound side.
        const Term& src = b0 ? l.args[0] : l.args[1];
        const Term& dst = b0 ? l.args[1] : l.args[0];
        DELTAMON_ASSIGN_OR_RETURN(Value v, TermValue(src, env));
        env[dst.var] = std::move(v);
        DELTAMON_PROF(++slot->bindings_tried; ++slot->rows_out);
        Status s = EvalBodyImpl<kProfiled>(clause, order, step + 1, env, state_override, emit,
                            stop, prof);
        env[dst.var].reset();
        return s;
      }
      DELTAMON_ASSIGN_OR_RETURN(Value a, TermValue(l.args[0], env));
      DELTAMON_ASSIGN_OR_RETURN(Value b, TermValue(l.args[1], env));
      DELTAMON_PROF(++slot->bindings_tried);
      if (!EvalCompare(l.cmp, a, b)) return Status::OK();
      DELTAMON_PROF(++slot->rows_out);
      return EvalBodyImpl<kProfiled>(clause, order, step + 1, env, state_override, emit,
                      stop, prof);
    }

    case Literal::Kind::kArith: {
      DELTAMON_ASSIGN_OR_RETURN(Value a, TermValue(l.args[1], env));
      DELTAMON_ASSIGN_OR_RETURN(Value b, TermValue(l.args[2], env));
      DELTAMON_PROF(++slot->bindings_tried);
      Result<Value> r = [&]() {
        switch (l.arith) {
          case ArithOp::kAdd:
            return Add(a, b);
          case ArithOp::kSub:
            return Subtract(a, b);
          case ArithOp::kMul:
            return Multiply(a, b);
          case ArithOp::kDiv:
            return Divide(a, b);
        }
        return Result<Value>(Status::Internal("bad arith op"));
      }();
      // Arithmetic failure (division by zero, overflow, type error) makes
      // the branch underivable rather than aborting the query.
      if (!r.ok()) return Status::OK();
      const Term& out = l.args[0];
      if (out.is_const() || env[out.var].has_value()) {
        DELTAMON_ASSIGN_OR_RETURN(Value cur, TermValue(out, env));
        if (cur.Compare(*r) != 0) return Status::OK();
        DELTAMON_PROF(++slot->rows_out);
        return EvalBodyImpl<kProfiled>(clause, order, step + 1, env, state_override, emit,
                        stop, prof);
      }
      env[out.var] = std::move(*r);
      DELTAMON_PROF(++slot->rows_out);
      Status s = EvalBodyImpl<kProfiled>(clause, order, step + 1, env, state_override, emit,
                          stop, prof);
      env[out.var].reset();
      return s;
    }

    case Literal::Kind::kRelation: {
      EvalState state = state_override.value_or(l.state);

      // Δ-role literal: generate from one side of the influent's Δ-set.
      if (l.role != RelationRole::kExtent) {
        // Lineage capture restricts the generator to one influent row: the
        // emitted tuples are exactly that row's contribution (a clause has
        // one Δ-role literal, so this is the only generator affected).
        const StateContext::RowRestriction* only = ctx_.restrict_delta;
        if (only != nullptr && only->row != nullptr &&
            only->relation == l.relation &&
            only->plus == (l.role == RelationRole::kDeltaPlus)) {
          const Tuple& t = *only->row;
          ++stats_.tuples_examined;
          DELTAMON_PROF(++slot->bindings_tried);
          std::vector<int> bound_here;
          bool match = true;
          for (size_t i = 0; i < l.args.size() && match; ++i) {
            const Term& a = l.args[i];
            if (a.is_const()) {
              match = a.constant == t[i];
            } else if (env[a.var].has_value()) {
              match = *env[a.var] == t[i];
            } else {
              env[a.var] = t[i];
              bound_here.push_back(a.var);
            }
          }
          Status status = Status::OK();
          if (match) {
            stats_.bindings_produced += bound_here.size();
            DELTAMON_PROF(++slot->rows_out);
            status = EvalBodyImpl<kProfiled>(clause, order, step + 1, env,
                                             state_override, emit, stop, prof);
          }
          for (int v : bound_here) env[v].reset();
          return status;
        }
        const DeltaSet* delta = ctx_.DeltaFor(l.relation);
        if (delta == nullptr) return Status::OK();
        const TupleSet& side = l.role == RelationRole::kDeltaPlus
                                   ? delta->plus()
                                   : delta->minus();
        Status status = Status::OK();
        for (const Tuple& t : side) {
          ++stats_.tuples_examined;
          DELTAMON_PROF(++slot->bindings_tried);
          // Unify args against t.
          std::vector<int> bound_here;
          bool match = true;
          for (size_t i = 0; i < l.args.size() && match; ++i) {
            const Term& a = l.args[i];
            if (a.is_const()) {
              match = a.constant == t[i];
            } else if (env[a.var].has_value()) {
              match = *env[a.var] == t[i];
            } else {
              env[a.var] = t[i];
              bound_here.push_back(a.var);
            }
          }
          if (match) {
            stats_.bindings_produced += bound_here.size();
            DELTAMON_PROF(++slot->rows_out);
            status =
                EvalBodyImpl<kProfiled>(clause, order, step + 1, env, state_override, emit,
                         stop, prof);
          }
          for (int v : bound_here) env[v].reset();
          if (!status.ok() || *stop) break;
        }
        return status;
      }

      // Negated extent literal: negation-as-absence. Bound positions form
      // the match pattern; unbound (wildcard) positions match anything.
      if (l.negated) {
        ScanPattern pattern(l.args.size());
        [[maybe_unused]] bool has_bound = false;
        for (size_t i = 0; i < l.args.size(); ++i) {
          if (l.args[i].is_const()) {
            pattern[i] = l.args[i].constant;
          } else if (env[l.args[i].var].has_value()) {
            pattern[i] = *env[l.args[i].var];
          }
          has_bound = has_bound || pattern[i].has_value();
        }
        DELTAMON_PROF(++slot->bindings_tried;
                      ++(has_bound ? slot->probes : slot->scans));
        bool exists = false;
        DELTAMON_RETURN_IF_ERROR(
            ScanRelation(l.relation, state, pattern, [&exists](const Tuple&) {
              exists = true;
              return false;  // stop at the first witness
            }));
        if (exists) return Status::OK();
        DELTAMON_PROF(++slot->rows_out);
        return EvalBodyImpl<kProfiled>(clause, order, step + 1, env, state_override, emit,
                        stop, prof);
      }

      // Positive extent literal: scan with the bound positions as pattern.
      ScanPattern pattern(l.args.size());
      [[maybe_unused]] bool has_bound = false;
      for (size_t i = 0; i < l.args.size(); ++i) {
        if (l.args[i].is_const()) {
          pattern[i] = l.args[i].constant;
        } else if (env[l.args[i].var].has_value()) {
          pattern[i] = *env[l.args[i].var];
        }
        has_bound = has_bound || pattern[i].has_value();
      }
      DELTAMON_PROF(++(has_bound ? slot->probes : slot->scans));
      Status status = Status::OK();
      DELTAMON_RETURN_IF_ERROR(ScanRelation(
          l.relation, state, pattern, [&](const Tuple& t) {
            DELTAMON_PROF(++slot->bindings_tried);
            std::vector<int> bound_here;
            bool match = true;
            for (size_t i = 0; i < l.args.size() && match; ++i) {
              const Term& a = l.args[i];
              if (a.is_const()) continue;  // filtered by the pattern
              if (env[a.var].has_value()) {
                // Either filtered by the pattern, or a repeated variable
                // bound earlier within this same literal (q(X, X)).
                match = *env[a.var] == t[i];
              } else {
                env[a.var] = t[i];
                bound_here.push_back(a.var);
              }
            }
            if (match) {
              stats_.bindings_produced += bound_here.size();
              DELTAMON_PROF(++slot->rows_out);
              status = EvalBodyImpl<kProfiled>(clause, order, step + 1, env, state_override,
                                emit, stop, prof);
            }
            for (int v : bound_here) env[v].reset();
            return status.ok() && !*stop;
          }));
      return status;
    }
  }
  return Status::Internal("unknown literal kind");
}

Status Evaluator::EvaluateClause(const Clause& clause, TupleSet* out) {
  if (kernels_) {
    DELTAMON_ASSIGN_OR_RETURN(bool handled,
                              TryEvaluateClauseKernel(clause, out));
    if (handled) return Status::OK();
  }
  return EvaluateClauseWithBindings(clause, {}, out);
}

Status Evaluator::EvaluateClauseWithBindings(
    const Clause& clause, const std::vector<std::pair<int, Value>>& bindings,
    TupleSet* out) {
  ++stats_.clause_evals;
  DELTAMON_OBS_SPAN(clause_span, "eval", "clause");
  if (clause_span.active()) {
    clause_span.SetName("clause:" +
                        db_.catalog().RelationName(clause.head_relation));
    clause_span.AddField("relation",
                         static_cast<int64_t>(clause.head_relation));
    clause_span.AddField("literals", static_cast<int64_t>(clause.body.size()));
    clause_span.AddField("bindings", static_cast<int64_t>(bindings.size()));
  }
  std::vector<size_t> order =
      OrderBody(clause.body, clause.num_vars,
                std::vector<bool>(std::max(clause.num_vars, 0)),
                &db_.catalog().stats());
  Env env(clause.num_vars);
  for (const auto& [var, value] : bindings) {
    if (var < 0 || var >= clause.num_vars) {
      return Status::InvalidArgument("binding for unknown variable");
    }
    env[var] = value;
  }
  if (!bindings.empty()) {
    std::vector<bool> prebound(clause.num_vars, false);
    for (const auto& [var, value] : bindings) prebound[var] = true;
    order = OrderBody(clause.body, clause.num_vars, prebound,
                      &db_.catalog().stats());
  }
  bool stop = false;
  auto emit = [&](const Env& e) -> Status {
    std::vector<Value> vals;
    vals.reserve(clause.head_args.size());
    for (const Term& t : clause.head_args) {
      DELTAMON_ASSIGN_OR_RETURN(Value v, TermValue(t, e));
      vals.push_back(std::move(v));
    }
    out->insert(Tuple(std::move(vals)));
    return Status::OK();
  };
  return EvalBody(clause, order, 0, env, std::nullopt, emit, &stop,
                  BeginClauseProfile(clause));
}

Status Evaluator::Evaluate(RelationId rel, EvalState state, TupleSet* out) {
  if (db_.catalog().GetBaseRelation(rel) != nullptr ||
      ctx_.ViewFor(rel) != nullptr ||
      registry_.GetAggregate(rel) != nullptr ||
      registry_.GetForeign(rel) != nullptr ||
      registry_.IsRecursive(rel)) {
    return ScanRelation(rel, state, ScanPattern{}, [out](const Tuple& t) {
      out->insert(t);
      return true;
    });
  }
  const std::vector<Clause>* clauses = registry_.GetClauses(rel);
  if (clauses == nullptr) {
    return Status::NotFound("relation id " + std::to_string(rel) +
                            " has neither storage nor clauses");
  }
  std::optional<EvalState> override_state;
  if (state == EvalState::kOld) override_state = EvalState::kOld;
  for (const Clause& clause : *clauses) {
    ++stats_.clause_evals;
    std::vector<size_t> order =
        OrderBody(clause.body, clause.num_vars,
                  std::vector<bool>(std::max(clause.num_vars, 0)),
                  &db_.catalog().stats());
    Env env(clause.num_vars);
    bool stop = false;
    auto emit = [&](const Env& e) -> Status {
      std::vector<Value> vals;
      vals.reserve(clause.head_args.size());
      for (const Term& t : clause.head_args) {
        DELTAMON_ASSIGN_OR_RETURN(Value v, TermValue(t, e));
        vals.push_back(std::move(v));
      }
      out->insert(Tuple(std::move(vals)));
      return Status::OK();
    };
    DELTAMON_RETURN_IF_ERROR(EvalBody(clause, order, 0, env, override_state,
                                      emit, &stop,
                                      BeginClauseProfile(clause)));
  }
  return Status::OK();
}

Result<bool> Evaluator::Derivable(RelationId rel, EvalState state,
                                  const Tuple& t) {
  if (db_.catalog().GetBaseRelation(rel) != nullptr ||
      ctx_.ViewFor(rel) != nullptr) {
    return Contains(rel, state, t);
  }
  if (registry_.GetAggregate(rel) != nullptr ||
      registry_.GetForeign(rel) != nullptr || registry_.IsRecursive(rel)) {
    ScanPattern pattern(t.arity());
    for (size_t i = 0; i < t.arity(); ++i) pattern[i] = t[i];
    bool found = false;
    DELTAMON_RETURN_IF_ERROR(
        ScanRelation(rel, state, pattern, [&found](const Tuple&) {
          found = true;
          return false;
        }));
    return found;
  }
  const std::vector<Clause>* clauses = registry_.GetClauses(rel);
  if (clauses == nullptr) {
    return Status::NotFound("relation id " + std::to_string(rel) +
                            " has neither storage nor clauses");
  }
  std::optional<EvalState> override_state;
  if (state == EvalState::kOld) override_state = EvalState::kOld;
  for (const Clause& clause : *clauses) {
    if (clause.head_args.size() != t.arity()) {
      return Status::InvalidArgument("point query arity mismatch");
    }
    ++stats_.clause_evals;
    Env env(clause.num_vars);
    bool feasible = true;
    for (size_t i = 0; i < clause.head_args.size() && feasible; ++i) {
      const Term& h = clause.head_args[i];
      if (h.is_const()) {
        feasible = h.constant == t[i];
      } else if (env[h.var].has_value()) {
        feasible = *env[h.var] == t[i];
      } else {
        env[h.var] = t[i];
      }
    }
    if (!feasible) continue;
    std::vector<bool> prebound(clause.num_vars, false);
    for (int v = 0; v < clause.num_vars; ++v) prebound[v] = env[v].has_value();
    std::vector<size_t> order = OrderBody(clause.body, clause.num_vars,
                                          prebound, &db_.catalog().stats());
    bool stop = false;
    bool found = false;
    auto emit = [&](const Env&) -> Status {
      found = true;
      stop = true;
      return Status::OK();
    };
    DELTAMON_RETURN_IF_ERROR(EvalBody(clause, order, 0, env, override_state,
                                      emit, &stop,
                                      BeginClauseProfile(clause)));
    if (found) return true;
  }
  return false;
}

bool Evaluator::CacheRetainSafe(RelationId rel) const {
  // Transactional reads see the snapshot's private overlay — never shared.
  if (ctx_.txn != nullptr) return false;
  // Walk the dependency closure of `rel`; an extent whose derivation read
  // the node-local overlay Δ or the hidden view would leak per-node state
  // into a cache shared across waves (and, via PropagationOptions::caches,
  // across Propagate calls).
  bool overlay_active =
      ctx_.overlay_delta != nullptr && ctx_.overlay_rel != kInvalidRelationId;
  if (!overlay_active && ctx_.hidden_view == kInvalidRelationId) return true;
  std::unordered_set<RelationId> visited;
  std::vector<RelationId> frontier{rel};
  while (!frontier.empty()) {
    RelationId cur = frontier.back();
    frontier.pop_back();
    if (!visited.insert(cur).second) continue;
    if ((overlay_active && cur == ctx_.overlay_rel) ||
        cur == ctx_.hidden_view) {
      return false;
    }
    if (const AggregateDef* agg = registry_.GetAggregate(cur)) {
      frontier.push_back(agg->source);
      continue;
    }
    if (const std::vector<Clause>* clauses = registry_.GetClauses(cur)) {
      for (RelationId dep : DerivedRegistry::DirectDependencies(*clauses)) {
        frontier.push_back(dep);
      }
    }
  }
  return true;
}

Result<const BaseRelation*> Evaluator::FixpointMaterialize(RelationId rel,
                                                           EvalState state) {
  if (BaseRelation* cached = cache_->FindIndexed(rel, state)) return cached;
  const std::vector<Clause>* clauses = registry_.GetClauses(rel);
  if (clauses == nullptr) {
    return Status::NotFound("recursive relation id " + std::to_string(rel) +
                            " has no clauses");
  }
  const FunctionSignature* sig = db_.catalog().GetSignature(rel);
  if (sig == nullptr) {
    return Status::Internal("recursive relation without signature");
  }
  // Stratification: recursion through negation has no monotone fixpoint.
  for (const Clause& clause : *clauses) {
    for (const Literal& lit : clause.body) {
      if (lit.kind == Literal::Kind::kRelation && lit.negated &&
          (lit.relation == rel || registry_.IsRecursive(lit.relation))) {
        return Status::Unimplemented(
            "recursion through negation is not stratifiable");
      }
    }
  }
  // Seed an empty extent so self-references read the previous rounds'
  // tuples; grow until no clause derives anything new (naive iteration —
  // monotone, hence terminating on finite domains). The extent is indexed
  // so the self-probes inside each round stay cheap.
  BaseRelation* extent = cache_->InsertIndexed(
      rel, state,
      std::make_unique<BaseRelation>(rel, db_.catalog().RelationName(rel),
                                     sig->ToSchema()),
      CacheRetainSafe(rel));
  std::optional<EvalState> override_state;
  if (state == EvalState::kOld) override_state = EvalState::kOld;
  constexpr int kMaxRounds = 100000;
  for (int round = 0; round < kMaxRounds; ++round) {
    TupleSet fresh;
    for (const Clause& clause : *clauses) {
      ++stats_.clause_evals;
      std::vector<size_t> order =
          OrderBody(clause.body, clause.num_vars,
                    std::vector<bool>(std::max(clause.num_vars, 0)),
                    &db_.catalog().stats());
      Env env(clause.num_vars);
      bool stop = false;
      auto emit = [&](const Env& e) -> Status {
        std::vector<Value> vals;
        vals.reserve(clause.head_args.size());
        for (const Term& t : clause.head_args) {
          DELTAMON_ASSIGN_OR_RETURN(Value v, TermValue(t, e));
          vals.push_back(std::move(v));
        }
        Tuple t(std::move(vals));
        if (!extent->Contains(t)) fresh.insert(std::move(t));
        return Status::OK();
      };
      DELTAMON_RETURN_IF_ERROR(EvalBody(clause, order, 0, env, override_state,
                                        emit, &stop,
                                        BeginClauseProfile(clause)));
    }
    if (fresh.empty()) return extent;
    for (const Tuple& t : fresh) extent->Insert(t);
  }
  return Status::Internal("recursive fixpoint did not converge");
}

Status Evaluator::Probe(RelationId rel, EvalState state,
                        const ScanPattern& pattern, TupleSet* out) {
  return ScanRelation(rel, state, pattern, [out](const Tuple& t) {
    out->insert(t);
    return true;
  });
}

Status Evaluator::ScanAggregate(RelationId /*rel*/, const AggregateDef& def,
                                EvalState state, const ScanPattern& pattern,
                                const std::function<bool(const Tuple&)>& fn) {
  const FunctionSignature* src_sig = db_.catalog().GetSignature(def.source);
  if (src_sig == nullptr) {
    return Status::NotFound("aggregate source relation not found");
  }
  // Push bound group columns down into the source scan.
  ScanPattern source_pattern(src_sig->arity());
  for (size_t i = 0; i < def.group_by.size(); ++i) {
    if (i < pattern.size() && pattern[i].has_value()) {
      source_pattern[def.group_by[i]] = pattern[i];
    }
  }
  struct Accum {
    int64_t count = 0;
    Value value;  // running sum / min / max
  };
  std::unordered_map<Tuple, Accum, TupleHash> groups;
  Status fold_status = Status::OK();
  DELTAMON_RETURN_IF_ERROR(ScanRelation(
      def.source, state, source_pattern, [&](const Tuple& t) {
        Accum& acc = groups[t.Project(def.group_by)];
        ++acc.count;
        switch (def.func) {
          case AggregateDef::Func::kCount:
            break;
          case AggregateDef::Func::kSum: {
            if (acc.count == 1) {
              acc.value = t[def.value_column];
            } else {
              Result<Value> sum = Add(acc.value, t[def.value_column]);
              if (!sum.ok()) {
                fold_status = sum.status();
                return false;
              }
              acc.value = std::move(*sum);
            }
            break;
          }
          case AggregateDef::Func::kMin:
            if (acc.count == 1 ||
                t[def.value_column].Compare(acc.value) < 0) {
              acc.value = t[def.value_column];
            }
            break;
          case AggregateDef::Func::kMax:
            if (acc.count == 1 ||
                t[def.value_column].Compare(acc.value) > 0) {
              acc.value = t[def.value_column];
            }
            break;
        }
        return true;
      }));
  DELTAMON_RETURN_IF_ERROR(fold_status);

  // A global COUNT over an empty source is 0, not absent (so conditions
  // like "count = 0" are expressible).
  if (groups.empty() && def.func == AggregateDef::Func::kCount &&
      def.group_by.empty()) {
    groups.emplace(Tuple{}, Accum{});
  }

  for (const auto& [key, acc] : groups) {
    Tuple row = key.Concat(
        Tuple{def.func == AggregateDef::Func::kCount ? Value(acc.count)
                                                     : acc.value});
    bool match = true;
    for (size_t i = 0; i < pattern.size() && i < row.arity(); ++i) {
      if (pattern[i].has_value() && !(row[i] == *pattern[i])) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    ++stats_.tuples_examined;
    if (!fn(row)) break;
  }
  return Status::OK();
}

}  // namespace deltamon::objectlog
