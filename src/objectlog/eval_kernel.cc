/// Batch (set-at-a-time) clause evaluation: the kernel path behind
/// Evaluator::EnableKernels. A partial differential's whole Δ-set is
/// materialized into a columnar wave-front table (common/column_table.h)
/// and pushed through per-literal kernels — dense compare/arith passes,
/// build–probe hash joins, distinct-key existence probes — instead of the
/// tuple-at-a-time recursive interpreter in eval.cc. Results are identical
/// (the certified outputs are all set- or count-valued; emission order is
/// free), only the execution strategy differs. See docs/kernels.md.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>
#include <vector>

#include "common/column_table.h"
#include "objectlog/eval.h"

namespace deltamon::objectlog {
namespace {

/// The wave-front batch between two kernel steps: one column per variable
/// that is bound AND still needed (used by a later literal or the head).
struct Batch {
  ColumnTable table;
  std::vector<int> col_of_var;  ///< var -> column index, -1 when absent
  std::vector<int> var_of_col;  ///< column index -> var
};

Batch MakeLayout(size_t nvars, const std::vector<bool>& bound,
                 const std::vector<bool>& needed) {
  Batch b;
  b.col_of_var.assign(nvars, -1);
  for (size_t v = 0; v < nvars; ++v) {
    if (bound[v] && needed[v]) {
      b.col_of_var[v] = static_cast<int>(b.var_of_col.size());
      b.var_of_col.push_back(static_cast<int>(v));
    }
  }
  b.table = ColumnTable(b.var_of_col.size());
  return b;
}

/// A compiled operand: a constant or a batch column.
struct Operand {
  bool is_const = false;
  Value constant;
  int col = -1;
};

Operand CompileOperand(const Term& t, const Batch& b) {
  Operand o;
  if (t.is_const()) {
    o.is_const = true;
    o.constant = t.constant;
  } else {
    o.col = b.col_of_var[t.var];
  }
  return o;
}

Value OperandValue(const Operand& o, const Batch& b, size_t row) {
  return o.is_const ? o.constant : b.table.Get(row, o.col);
}

/// Row transfer from one batch layout to the next: passthrough columns are
/// copied rep-to-rep; `fresh` lists the destination columns a step must
/// fill with newly bound values before FinishRow.
struct RowCopier {
  std::vector<int> src_of_dst;
  std::vector<std::pair<int, int>> fresh;  ///< (dst column, var)

  RowCopier(const Batch& src, const Batch& dst) {
    src_of_dst.resize(dst.var_of_col.size());
    for (size_t c = 0; c < dst.var_of_col.size(); ++c) {
      int v = dst.var_of_col[c];
      src_of_dst[c] = src.col_of_var[v];
      if (src.col_of_var[v] < 0) fresh.emplace_back(static_cast<int>(c), v);
    }
  }

  void CopyThrough(const Batch& src, Batch& dst, size_t row) const {
    for (size_t c = 0; c < src_of_dst.size(); ++c) {
      if (src_of_dst[c] >= 0) {
        dst.table.AppendCellFrom(c, src.table, src_of_dst[c], row);
      }
    }
  }
};

/// Charges a kernel step's wall time to its profile slot (inactive when no
/// profiler is attached — no clock reads).
class StepTimer {
 public:
  explicit StepTimer(obs::LiteralProfile* slot) : slot_(slot) {
    if (slot_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  StepTimer(const StepTimer&) = delete;
  StepTimer& operator=(const StepTimer&) = delete;
  ~StepTimer() {
    if (slot_ == nullptr) return;
    auto elapsed = std::chrono::steady_clock::now() - start_;
    slot_->time_ns += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count());
  }

 private:
  obs::LiteralProfile* slot_;
  std::chrono::steady_clock::time_point start_;
};

/// Compiled unification program for one relation literal: constant
/// positions to check, repeated-variable positions to cross-check, and the
/// first tuple position of each distinct variable.
struct LiteralShape {
  std::vector<std::pair<size_t, Value>> const_checks;
  std::vector<std::pair<size_t, size_t>> repeat_checks;  ///< (pos, first pos)
  std::vector<int> first_pos;                            ///< var -> position
  std::vector<int> distinct_vars;  ///< first-occurrence order

  LiteralShape(const Literal& l, size_t nvars) : first_pos(nvars, -1) {
    for (size_t i = 0; i < l.args.size(); ++i) {
      const Term& t = l.args[i];
      if (t.is_const()) {
        const_checks.emplace_back(i, t.constant);
      } else if (first_pos[t.var] >= 0) {
        repeat_checks.emplace_back(i, static_cast<size_t>(first_pos[t.var]));
      } else {
        first_pos[t.var] = static_cast<int>(i);
        distinct_vars.push_back(t.var);
      }
    }
  }

  bool Matches(const Tuple& t) const {
    for (const auto& [i, c] : const_checks) {
      if (!(t[i] == c)) return false;
    }
    for (const auto& [i, j] : repeat_checks) {
      if (!(t[i] == t[j])) return false;
    }
    return true;
  }
};

}  // namespace

Result<bool> Evaluator::TryEvaluateClauseKernel(const Clause& clause,
                                                TupleSet* out) {
  // Transactional reads must flow through the snapshot's footprint
  // recording one probe at a time; the batch path stays out of the way.
  if (ctx_.txn != nullptr) return false;
  const std::vector<Literal>& body = clause.body;
  size_t nvars = static_cast<size_t>(std::max(clause.num_vars, 0));

  // Shape screen: exactly one Δ-role generator, and no relation with
  // bespoke scan semantics (aggregate folds, foreign implementations,
  // recursive fixpoints) anywhere in the body.
  size_t ndelta = 0;
  for (const Literal& l : body) {
    if (l.kind != Literal::Kind::kRelation) continue;
    if (l.role != RelationRole::kExtent) {
      if (l.negated) return false;
      ++ndelta;
    }
    if (registry_.GetAggregate(l.relation) != nullptr ||
        registry_.GetForeign(l.relation) != nullptr ||
        registry_.IsRecursive(l.relation)) {
      return false;
    }
  }
  if (ndelta != 1) return false;

  const StatsStore& stats = db_.catalog().stats();
  std::vector<size_t> order =
      OrderBody(body, clause.num_vars, std::vector<bool>(nvars), &stats);
  size_t nsteps = order.size();
  if (body[order[0]].kind != Literal::Kind::kRelation ||
      body[order[0]].role == RelationRole::kExtent) {
    return false;
  }

  // Boundness simulation over the interpreter's own order: every step must
  // be batch-evaluable, and the head fully bound at the end. Any literal
  // the batch kernels can't express declines the whole clause.
  std::vector<std::vector<bool>> bound_after(nsteps);
  {
    std::vector<bool> bound(nvars, false);
    auto term_bound = [&bound](const Term& t) {
      return t.is_const() || bound[t.var];
    };
    for (size_t k = 0; k < nsteps; ++k) {
      const Literal& l = body[order[k]];
      switch (l.kind) {
        case Literal::Kind::kCompare: {
          bool b0 = term_bound(l.args[0]);
          bool b1 = term_bound(l.args[1]);
          if (b0 && b1) break;  // pure filter
          if (l.cmp == CompareOp::kEq && (b0 || b1)) {
            bound[(b0 ? l.args[1] : l.args[0]).var] = true;  // binder
            break;
          }
          return false;
        }
        case Literal::Kind::kArith:
          if (!term_bound(l.args[1]) || !term_bound(l.args[2])) return false;
          if (l.args[0].is_var()) bound[l.args[0].var] = true;
          break;
        case Literal::Kind::kRelation:
          if (l.role != RelationRole::kExtent) {
            if (k != 0) return false;  // generator must lead the pipeline
            for (const Term& t : l.args) {
              if (t.is_var()) bound[t.var] = true;
            }
            break;
          }
          if (l.negated) {
            // Unbound positions are wildcards only when single-use.
            for (const Term& t : l.args) {
              if (term_bound(t)) continue;
              int uses = 0;
              for (const Literal& other : body) {
                for (const Term& ot : other.args) {
                  if (ot.is_var() && ot.var == t.var) ++uses;
                }
              }
              if (uses > 1) return false;
            }
            break;
          }
          for (const Term& t : l.args) {
            if (t.is_var()) bound[t.var] = true;
          }
          break;
      }
      bound_after[k] = bound;
    }
    for (const Term& h : clause.head_args) {
      if (h.is_var() && !bound[h.var]) return false;
    }
  }

  // Liveness: needed_in[k] = variables read at steps >= k or by the head.
  // Each step's output batch keeps exactly bound ∩ needed_in[k+1].
  std::vector<std::vector<bool>> needed_in(nsteps + 1,
                                           std::vector<bool>(nvars, false));
  for (const Term& h : clause.head_args) {
    if (h.is_var()) needed_in[nsteps][h.var] = true;
  }
  for (size_t k = nsteps; k-- > 0;) {
    needed_in[k] = needed_in[k + 1];
    for (const Term& t : body[order[k]].args) {
      if (t.is_var()) needed_in[k][t.var] = true;
    }
  }

  // Semi-join pre-filter (structural, data-independent rule): when one or
  // more compute steps separate the Δ generator from the first extent
  // literal joining it, and that literal is a stored base relation or a
  // materialized view, probe its key set right after the Δ step and
  // discard Δ rows with no join partner before paying for the
  // intermediates. The later join step still runs (and reports
  // "semijoin-filtered" as its access).
  size_t semijoin_step = 0;  // 0 (the Δ step itself) means disabled
  {
    bool intermediate = false;
    for (size_t k = 1; k < nsteps; ++k) {
      const Literal& l = body[order[k]];
      if (l.kind != Literal::Kind::kRelation || l.negated) {
        intermediate = true;  // per-row work the pre-filter can skip
        continue;
      }
      bool joins_delta = false;
      for (const Term& t : l.args) {
        if (t.is_var() && bound_after[0][t.var]) {
          joins_delta = true;
          break;
        }
      }
      if (joins_delta && intermediate &&
          (db_.catalog().GetBaseRelation(l.relation) != nullptr ||
           ctx_.ViewFor(l.relation) != nullptr)) {
        semijoin_step = k;
      }
      break;  // only the first extent literal qualifies
    }
  }

  // ---- Execution ----
  ++stats_.clause_evals;
  obs::ClauseProfile* cp = BeginClauseProfile(clause);

  // Step 0: materialize the Δ side into the wave-front table.
  Batch batch;
  {
    const Literal& dl = body[order[0]];
    obs::LiteralProfile* slot = cp ? &cp->slots[order[0]] : nullptr;
    StepTimer timer(slot);
    if (slot != nullptr) ++slot->rows_in;
    // Lineage capture restricts the generator to one influent row — the
    // kernel then computes exactly that row's contribution, matching the
    // interpreter's restricted path tuple for tuple.
    const StateContext::RowRestriction* only = ctx_.restrict_delta;
    const bool restricted =
        only != nullptr && only->row != nullptr &&
        only->relation == dl.relation &&
        only->plus == (dl.role == RelationRole::kDeltaPlus);
    const DeltaSet* delta = restricted ? nullptr : ctx_.DeltaFor(dl.relation);
    if (!restricted && delta == nullptr) {
      return true;  // no change set: empty result
    }
    batch = MakeLayout(nvars, bound_after[0], needed_in[1]);
    LiteralShape shape(dl, nvars);
    auto append_row = [&](const Tuple& t) {
      ++stats_.tuples_examined;
      if (slot != nullptr) ++slot->bindings_tried;
      if (!shape.Matches(t)) return;
      for (size_t c = 0; c < batch.var_of_col.size(); ++c) {
        batch.table.AppendCell(c, t[shape.first_pos[batch.var_of_col[c]]]);
      }
      batch.table.FinishRow();
    };
    if (restricted) {
      batch.table.Reserve(1);
      append_row(*only->row);
    } else {
      const TupleSet& side = dl.role == RelationRole::kDeltaPlus
                                 ? delta->plus()
                                 : delta->minus();
      batch.table.Reserve(side.size());
      for (const Tuple& t : side) append_row(t);
    }
    stats_.bindings_produced +=
        batch.table.num_rows() * shape.distinct_vars.size();
    if (slot != nullptr) slot->rows_out += batch.table.num_rows();
  }

  // Semi-join pre-filter: one stop-at-first existence probe per distinct
  // Δ-key of the flagged literal.
  if (semijoin_step != 0 && !batch.table.empty()) {
    const Literal& l = body[order[semijoin_step]];
    obs::LiteralProfile* slot = cp ? &cp->slots[order[semijoin_step]] : nullptr;
    StepTimer timer(slot);
    std::vector<size_t> key_cols;
    {
      std::vector<bool> seen(nvars, false);
      for (const Term& t : l.args) {
        if (t.is_var() && bound_after[0][t.var] && !seen[t.var]) {
          seen[t.var] = true;
          key_cols.push_back(
              static_cast<size_t>(batch.col_of_var[t.var]));
        }
      }
    }
    ColumnTable::Grouping g = batch.table.GroupByKey(key_cols);
    std::vector<char> keep_row(batch.table.num_rows(), 0);
    for (size_t gi = 0; gi < g.reps.size(); ++gi) {
      ScanPattern pattern(l.args.size());
      for (size_t i = 0; i < l.args.size(); ++i) {
        const Term& t = l.args[i];
        if (t.is_const()) {
          pattern[i] = t.constant;
        } else if (bound_after[0][t.var]) {
          pattern[i] = batch.table.Get(g.reps[gi], batch.col_of_var[t.var]);
        }
      }
      if (slot != nullptr) ++slot->probes;
      bool exists = false;
      DELTAMON_RETURN_IF_ERROR(
          ScanRelation(l.relation, l.state, pattern, [&](const Tuple&) {
            exists = true;
            return false;  // stop at the first witness
          }));
      if (exists) {
        for (uint32_t row : g.rows[gi]) keep_row[row] = 1;
      }
    }
    Batch next = MakeLayout(nvars, bound_after[0], needed_in[1]);
    RowCopier copier(batch, next);
    for (size_t row = 0; row < batch.table.num_rows(); ++row) {
      if (!keep_row[row]) continue;
      copier.CopyThrough(batch, next, row);
      next.table.FinishRow();
    }
    batch = std::move(next);
  }

  // Steps 1..n: each consumes the batch and produces the next layout.
  for (size_t k = 1; k < nsteps && !batch.table.empty(); ++k) {
    const Literal& l = body[order[k]];
    obs::LiteralProfile* slot = cp ? &cp->slots[order[k]] : nullptr;
    StepTimer timer(slot);
    size_t rows = batch.table.num_rows();
    if (slot != nullptr) slot->rows_in += rows;
    Batch next = MakeLayout(nvars, bound_after[k], needed_in[k + 1]);
    RowCopier copier(batch, next);
    next.table.Reserve(rows);
    auto bound_prev = [&](const Term& t) {
      return t.is_const() || bound_after[k - 1][t.var];
    };

    switch (l.kind) {
      case Literal::Kind::kCompare: {
        bool b0 = bound_prev(l.args[0]);
        bool b1 = bound_prev(l.args[1]);
        if (l.cmp == CompareOp::kEq && b0 != b1) {
          // Equality binder: no filtering; the bound side's value becomes
          // the unbound variable's column (when still live).
          Operand src = CompileOperand(b0 ? l.args[0] : l.args[1], batch);
          for (size_t row = 0; row < rows; ++row) {
            if (slot != nullptr) ++slot->bindings_tried;
            copier.CopyThrough(batch, next, row);
            for (const auto& [dst, var] : copier.fresh) {
              next.table.AppendCell(dst, OperandValue(src, batch, row));
            }
            next.table.FinishRow();
          }
          break;
        }
        Operand a = CompileOperand(l.args[0], batch);
        Operand b = CompileOperand(l.args[1], batch);
        for (size_t row = 0; row < rows; ++row) {
          if (slot != nullptr) ++slot->bindings_tried;
          if (!EvalCompare(l.cmp, OperandValue(a, batch, row),
                           OperandValue(b, batch, row))) {
            continue;
          }
          copier.CopyThrough(batch, next, row);
          next.table.FinishRow();
        }
        break;
      }

      case Literal::Kind::kArith: {
        Operand a = CompileOperand(l.args[1], batch);
        Operand b = CompileOperand(l.args[2], batch);
        bool check = bound_prev(l.args[0]);
        Operand expect = check ? CompileOperand(l.args[0], batch) : Operand{};
        for (size_t row = 0; row < rows; ++row) {
          if (slot != nullptr) ++slot->bindings_tried;
          Value av = OperandValue(a, batch, row);
          Value bv = OperandValue(b, batch, row);
          Result<Value> r = [&]() {
            switch (l.arith) {
              case ArithOp::kAdd:
                return Add(av, bv);
              case ArithOp::kSub:
                return Subtract(av, bv);
              case ArithOp::kMul:
                return Multiply(av, bv);
              case ArithOp::kDiv:
                return Divide(av, bv);
            }
            return Result<Value>(Status::Internal("bad arith op"));
          }();
          // Arithmetic failure makes the row underivable, not an error —
          // same contract as the interpreter.
          if (!r.ok()) continue;
          if (check) {
            if (OperandValue(expect, batch, row).Compare(*r) != 0) continue;
            copier.CopyThrough(batch, next, row);
          } else {
            copier.CopyThrough(batch, next, row);
            for (const auto& [dst, var] : copier.fresh) {
              next.table.AppendCell(dst, *r);
            }
          }
          next.table.FinishRow();
        }
        break;
      }

      case Literal::Kind::kRelation: {
        LiteralShape shape(l, nvars);
        std::vector<int> join_vars;  // bound distinct vars, arg order
        std::vector<int> new_vars;   // unbound distinct vars, arg order
        for (int v : shape.distinct_vars) {
          (bound_after[k - 1][v] ? join_vars : new_vars).push_back(v);
        }
        std::vector<size_t> batch_key_cols;
        batch_key_cols.reserve(join_vars.size());
        for (int v : join_vars) {
          batch_key_cols.push_back(static_cast<size_t>(batch.col_of_var[v]));
        }
        bool any_pattern = !shape.const_checks.empty() || !join_vars.empty();
        auto fill_pattern = [&](size_t rep_row) {
          ScanPattern pattern(l.args.size());
          for (size_t i = 0; i < l.args.size(); ++i) {
            const Term& t = l.args[i];
            if (t.is_const()) {
              pattern[i] = t.constant;
            } else if (bound_after[k - 1][t.var]) {
              pattern[i] =
                  batch.table.Get(rep_row, batch.col_of_var[t.var]);
            }
          }
          return pattern;
        };

        if (l.negated || new_vars.empty()) {
          // Existence (or absence) filter: one stop-at-first probe per
          // distinct key, whole groups survive or die together.
          if (slot != nullptr) slot->bindings_tried += rows;
          ColumnTable::Grouping g = batch.table.GroupByKey(batch_key_cols);
          std::vector<char> keep_row(rows, 0);
          for (size_t gi = 0; gi < g.reps.size(); ++gi) {
            if (slot != nullptr) ++(any_pattern ? slot->probes : slot->scans);
            bool exists = false;
            DELTAMON_RETURN_IF_ERROR(ScanRelation(
                l.relation, l.state, fill_pattern(g.reps[gi]),
                [&](const Tuple&) {
                  exists = true;
                  return false;
                }));
            if (exists != l.negated) {
              for (uint32_t row : g.rows[gi]) keep_row[row] = 1;
            }
          }
          for (size_t row = 0; row < rows; ++row) {
            if (!keep_row[row]) continue;
            copier.CopyThrough(batch, next, row);
            next.table.FinishRow();
          }
          if (slot != nullptr && !l.negated) {
            slot->access = (k == semijoin_step) ? "semijoin-filtered"
                                                : "hash-join/probe";
          }
          break;
        }

        // Join: pick build or probe by estimated cost. E is the extent
        // estimate, m = E × selectivity the expected match fanout per
        // batch row, R the batch size. A probe pays a ScanRelation
        // dispatch (pattern build, index lookup, callback chain) per
        // distinct key — weight 8 — while a build pays one extent
        // materialization (weight 1.5 per tuple) plus a cheap dense hash
        // lookup per row. Build is only available when the extent can be
        // enumerated directly (stored base relation or materialized view).
        size_t nbound_pos = 0;
        for (const Term& t : l.args) {
          if (bound_prev(t)) ++nbound_pos;
        }
        double extent = ExtentEstimate(l.relation);
        double sel =
            stats
                .Selectivity(l.relation,
                             static_cast<int>(RelationRole::kExtent),
                             static_cast<int>(nbound_pos))
                .value_or(std::pow(0.1, static_cast<double>(nbound_pos)));
        double m = extent * sel;
        double r_rows = static_cast<double>(rows);
        double cost_probe = r_rows * (8.0 + m);
        double cost_build = 1.5 * extent + r_rows * (1.0 + m);
        bool build_ok =
            !join_vars.empty() &&
            (db_.catalog().GetBaseRelation(l.relation) != nullptr ||
             ctx_.ViewFor(l.relation) != nullptr);
        bool use_build = build_ok && cost_build <= cost_probe;

        // Destination column of each still-live new variable in the side
        // table built below (ext for build, cand for probe): new_vars
        // order, dense.
        std::vector<int> side_col_of_var(nvars, -1);

        if (use_build) {
          // BUILD: one scan of the extent (constants pushed down) into a
          // columnar side table — join columns first, then the new
          // variables' columns — indexed on the join columns; every batch
          // row probes the index.
          ScanPattern pattern(l.args.size());
          for (const auto& [i, c] : shape.const_checks) pattern[i] = c;
          size_t njoin = join_vars.size();
          ColumnTable ext(njoin + new_vars.size());
          for (size_t i = 0; i < new_vars.size(); ++i) {
            side_col_of_var[new_vars[i]] = static_cast<int>(njoin + i);
          }
          if (slot != nullptr) ++slot->scans;
          DELTAMON_RETURN_IF_ERROR(ScanRelation(
              l.relation, l.state, pattern, [&](const Tuple& t) {
                for (const auto& [i, j] : shape.repeat_checks) {
                  if (!(t[i] == t[j])) return true;
                }
                for (size_t c = 0; c < njoin; ++c) {
                  ext.AppendCell(c, t[shape.first_pos[join_vars[c]]]);
                }
                for (size_t c = 0; c < new_vars.size(); ++c) {
                  ext.AppendCell(njoin + c,
                                 t[shape.first_pos[new_vars[c]]]);
                }
                ext.FinishRow();
                return true;
              }));
          std::vector<size_t> ext_key_cols(njoin);
          for (size_t c = 0; c < njoin; ++c) ext_key_cols[c] = c;
          ColumnTable::HashIndex idx = ext.BuildIndex(ext_key_cols);
          for (size_t row = 0; row < rows; ++row) {
            size_t h = batch.table.KeyHash(row, batch_key_cols);
            for (uint32_t er = idx.First(h);
                 er != ColumnTable::HashIndex::kNoRow; er = idx.Next(er)) {
              if (slot != nullptr) ++slot->bindings_tried;
              if (!ext.KeyEquals(er, ext_key_cols, batch.table, row,
                                 batch_key_cols)) {
                continue;
              }
              copier.CopyThrough(batch, next, row);
              for (const auto& [dst, var] : copier.fresh) {
                next.table.AppendCellFrom(dst, ext, side_col_of_var[var],
                                          er);
              }
              next.table.FinishRow();
            }
          }
          if (slot != nullptr) {
            slot->access = (k == semijoin_step) ? "semijoin-filtered"
                                                : "hash-join/build";
          }
        } else {
          // PROBE: group the batch by its distinct join keys; each group
          // issues one ScanRelation with the key (and constants) pushed
          // down, collects the matches' new-variable columns, then
          // cross-emits members × matches.
          for (size_t i = 0; i < new_vars.size(); ++i) {
            side_col_of_var[new_vars[i]] = static_cast<int>(i);
          }
          ColumnTable::Grouping g = batch.table.GroupByKey(batch_key_cols);
          for (size_t gi = 0; gi < g.reps.size(); ++gi) {
            if (slot != nullptr) ++(any_pattern ? slot->probes : slot->scans);
            ColumnTable cand(new_vars.size());
            DELTAMON_RETURN_IF_ERROR(ScanRelation(
                l.relation, l.state, fill_pattern(g.reps[gi]),
                [&](const Tuple& t) {
                  if (slot != nullptr) ++slot->bindings_tried;
                  // Bound-variable repeats are fully covered by the
                  // pattern; unbound repeats still need the cross-check.
                  for (const auto& [i, j] : shape.repeat_checks) {
                    if (!(t[i] == t[j])) return true;
                  }
                  for (size_t c = 0; c < new_vars.size(); ++c) {
                    cand.AppendCell(c, t[shape.first_pos[new_vars[c]]]);
                  }
                  cand.FinishRow();
                  return true;
                }));
            if (cand.empty()) continue;
            for (uint32_t row : g.rows[gi]) {
              for (size_t cr = 0; cr < cand.num_rows(); ++cr) {
                copier.CopyThrough(batch, next, row);
                for (const auto& [dst, var] : copier.fresh) {
                  next.table.AppendCellFrom(dst, cand,
                                            side_col_of_var[var], cr);
                }
                next.table.FinishRow();
              }
            }
          }
          if (slot != nullptr) {
            slot->access = (k == semijoin_step) ? "semijoin-filtered"
                                                : "hash-join/probe";
          }
        }
        stats_.bindings_produced +=
            next.table.num_rows() * new_vars.size();
        break;
      }
    }
    batch = std::move(next);
    if (slot != nullptr) slot->rows_out += batch.table.num_rows();
  }

  // Head projection into the (deduplicating) result set.
  std::vector<Operand> head_ops;
  head_ops.reserve(clause.head_args.size());
  for (const Term& h : clause.head_args) {
    head_ops.push_back(CompileOperand(h, batch));
  }
  for (size_t row = 0; row < batch.table.num_rows(); ++row) {
    std::vector<Value> vals;
    vals.reserve(head_ops.size());
    for (const Operand& o : head_ops) {
      vals.push_back(OperandValue(o, batch, row));
    }
    out->insert(Tuple(std::move(vals)));
  }
  return true;
}

}  // namespace deltamon::objectlog
