#ifndef DELTAMON_OBJECTLOG_AST_H_
#define DELTAMON_OBJECTLOG_AST_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "storage/catalog.h"

namespace deltamon::objectlog {

/// A term of an ObjectLog literal: a variable (non-negative id local to its
/// clause) or a constant Value.
struct Term {
  enum class Kind { kVariable, kConstant };

  Kind kind = Kind::kConstant;
  int var = -1;
  Value constant;

  static Term Var(int id) {
    Term t;
    t.kind = Kind::kVariable;
    t.var = id;
    return t;
  }
  static Term Const(Value v) {
    Term t;
    t.kind = Kind::kConstant;
    t.constant = std::move(v);
    return t;
  }

  bool is_var() const { return kind == Kind::kVariable; }
  bool is_const() const { return kind == Kind::kConstant; }

  bool operator==(const Term& other) const {
    if (kind != other.kind) return false;
    return is_var() ? var == other.var : constant == other.constant;
  }

  std::string ToString(const std::vector<std::string>& var_names) const;
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
const char* CompareOpName(CompareOp op);
/// Applies `op` to the three-way comparison result a.Compare(b).
bool EvalCompare(CompareOp op, const Value& a, const Value& b);

enum class ArithOp { kAdd, kSub, kMul, kDiv };
const char* ArithOpName(ArithOp op);

/// The database state in which a relation literal is evaluated. Ordinary
/// clause definitions use kNew everywhere; the differencer annotates the
/// literals of generated partial differentials (paper §4.3–4.4: positive
/// differentials read the new state, negative differentials read the old
/// state of the other influents).
enum class EvalState { kNew, kOld };

/// The role a relation literal plays in a (possibly differenced) clause
/// body: an ordinary reference to the relation's extent, or a reference to
/// one side of the relation's Δ-set (the substituted occurrence in a
/// partial differential, paper §4.3).
enum class RelationRole { kExtent, kDeltaPlus, kDeltaMinus };

/// One body literal: a (possibly negated) relation reference, a comparison,
/// or an arithmetic binding `result = lhs op rhs`.
struct Literal {
  enum class Kind { kRelation, kCompare, kArith };

  Kind kind = Kind::kRelation;

  // --- kRelation ---
  RelationId relation = kInvalidRelationId;
  std::vector<Term> args;
  bool negated = false;
  EvalState state = EvalState::kNew;
  RelationRole role = RelationRole::kExtent;

  // --- kCompare --- (operands in args[0], args[1])
  CompareOp cmp = CompareOp::kEq;

  // --- kArith --- (args[0] = args[1] op args[2])
  ArithOp arith = ArithOp::kAdd;

  static Literal Relation(RelationId rel, std::vector<Term> args,
                          bool negated = false);
  static Literal Compare(CompareOp op, Term lhs, Term rhs);
  static Literal Arith(ArithOp op, Term result, Term lhs, Term rhs);

  std::string ToString(const Catalog& catalog,
                       const std::vector<std::string>& var_names) const;
};

/// A Horn clause: head(args) <- body. A derived relation may have several
/// clauses; multiple clauses implement body disjunction (the paper's
/// ObjectLog keeps disjunctions in bodies; splitting into clauses is the
/// equivalent DNF form and is what our differencer consumes).
struct Clause {
  RelationId head_relation = kInvalidRelationId;
  std::vector<Term> head_args;
  std::vector<Literal> body;
  /// Variables are numbered 0..num_vars-1 within the clause.
  int num_vars = 0;
  /// Optional debug names per variable id (e.g. "I", "_G1"). May be empty.
  std::vector<std::string> var_names;
  /// Stable identity for the per-literal profiler: "<relation>#<ordinal>"
  /// for registry clauses, the differential name ("Δcnd/Δ+quantity") for
  /// network clauses. Empty falls back to the head relation's name.
  std::string profile_label;

  /// Allocates a fresh variable (extends var_names when in use).
  int NewVar(const std::string& name_hint = "");

  std::string ToString(const Catalog& catalog) const;
};

/// Checks clause safety (range restriction): every head variable and every
/// variable of a negated literal, comparison, or arithmetic input must be
/// bound by some positive, non-negated relation literal or arithmetic
/// output; arithmetic outputs must be derivable in some evaluation order.
/// Returns InvalidArgument describing the first violation.
Status ValidateClause(const Clause& clause, const Catalog& catalog);

}  // namespace deltamon::objectlog

#endif  // DELTAMON_OBJECTLOG_AST_H_
