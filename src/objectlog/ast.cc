#include "objectlog/ast.h"

namespace deltamon::objectlog {

std::string Term::ToString(const std::vector<std::string>& var_names) const {
  if (is_const()) return constant.ToString();
  if (var >= 0 && static_cast<size_t>(var) < var_names.size() &&
      !var_names[var].empty()) {
    return var_names[var];
  }
  return "V" + std::to_string(var);
}

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

bool EvalCompare(CompareOp op, const Value& a, const Value& b) {
  int c = a.Compare(b);
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}

Literal Literal::Relation(RelationId rel, std::vector<Term> args,
                          bool negated) {
  Literal l;
  l.kind = Kind::kRelation;
  l.relation = rel;
  l.args = std::move(args);
  l.negated = negated;
  return l;
}

Literal Literal::Compare(CompareOp op, Term lhs, Term rhs) {
  Literal l;
  l.kind = Kind::kCompare;
  l.cmp = op;
  l.args = {std::move(lhs), std::move(rhs)};
  return l;
}

Literal Literal::Arith(ArithOp op, Term result, Term lhs, Term rhs) {
  Literal l;
  l.kind = Kind::kArith;
  l.arith = op;
  l.args = {std::move(result), std::move(lhs), std::move(rhs)};
  return l;
}

std::string Literal::ToString(const Catalog& catalog,
                              const std::vector<std::string>& var_names) const {
  switch (kind) {
    case Kind::kRelation: {
      std::string out;
      if (negated) out += "~";
      switch (role) {
        case RelationRole::kExtent:
          break;
        case RelationRole::kDeltaPlus:
          out += "Δ+";
          break;
        case RelationRole::kDeltaMinus:
          out += "Δ-";
          break;
      }
      out += catalog.RelationName(relation);
      if (state == EvalState::kOld && role == RelationRole::kExtent) {
        out += "_old";
      }
      out += "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i].ToString(var_names);
      }
      return out + ")";
    }
    case Kind::kCompare:
      return args[0].ToString(var_names) + " " + CompareOpName(cmp) + " " +
             args[1].ToString(var_names);
    case Kind::kArith:
      return args[0].ToString(var_names) + " = " +
             args[1].ToString(var_names) + " " + ArithOpName(arith) + " " +
             args[2].ToString(var_names);
  }
  return "?";
}

int Clause::NewVar(const std::string& name_hint) {
  int id = num_vars++;
  if (!var_names.empty() || !name_hint.empty()) {
    var_names.resize(num_vars);
    var_names[id] = name_hint.empty() ? "V" + std::to_string(id) : name_hint;
  }
  return id;
}

std::string Clause::ToString(const Catalog& catalog) const {
  std::string out = catalog.RelationName(head_relation) + "(";
  for (size_t i = 0; i < head_args.size(); ++i) {
    if (i > 0) out += ", ";
    out += head_args[i].ToString(var_names);
  }
  out += ") <- ";
  for (size_t i = 0; i < body.size(); ++i) {
    if (i > 0) out += " AND ";
    out += body[i].ToString(catalog, var_names);
  }
  return out;
}

Status ValidateClause(const Clause& clause, const Catalog& catalog) {
  std::vector<bool> bound(clause.num_vars, false);
  auto term_bound = [&bound](const Term& t) {
    return t.is_const() || (t.var >= 0 && bound[t.var]);
  };

  // Positive relation literals are generators: they bind all their
  // variables. Arithmetic and `=` comparisons can bind one variable once
  // their inputs are bound; iterate to a fixpoint.
  for (const Literal& l : clause.body) {
    if (l.kind == Literal::Kind::kRelation && !l.negated) {
      for (const Term& t : l.args) {
        if (t.is_var()) bound[t.var] = true;
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Literal& l : clause.body) {
      if (l.kind == Literal::Kind::kArith) {
        if (term_bound(l.args[1]) && term_bound(l.args[2]) &&
            l.args[0].is_var() && !bound[l.args[0].var]) {
          bound[l.args[0].var] = true;
          changed = true;
        }
      } else if (l.kind == Literal::Kind::kCompare && l.cmp == CompareOp::kEq) {
        if (term_bound(l.args[0]) && l.args[1].is_var() &&
            !bound[l.args[1].var]) {
          bound[l.args[1].var] = true;
          changed = true;
        } else if (term_bound(l.args[1]) && l.args[0].is_var() &&
                   !bound[l.args[0].var]) {
          bound[l.args[0].var] = true;
          changed = true;
        }
      }
    }
  }

  auto require_bound = [&](const Term& t, const std::string& where) -> Status {
    if (!term_bound(t)) {
      return Status::InvalidArgument(
          "unsafe clause for " + catalog.RelationName(clause.head_relation) +
          ": variable " + t.ToString(clause.var_names) + " in " + where +
          " is not bound by any positive literal");
    }
    return Status::OK();
  };

  for (const Term& t : clause.head_args) {
    DELTAMON_RETURN_IF_ERROR(require_bound(t, "head"));
  }
  // Count body occurrences per variable: a variable of a negated literal
  // may stay unbound only as a *wildcard* — occurring in that literal alone
  // (negation-as-absence over a partial match pattern).
  std::vector<int> occurrences(clause.num_vars, 0);
  for (const Literal& l : clause.body) {
    for (const Term& t : l.args) {
      if (t.is_var()) ++occurrences[t.var];
    }
  }
  for (const Literal& l : clause.body) {
    if (l.kind == Literal::Kind::kRelation && l.negated) {
      for (const Term& t : l.args) {
        if (t.is_var() && !bound[t.var] && occurrences[t.var] == 1) {
          continue;  // wildcard
        }
        DELTAMON_RETURN_IF_ERROR(require_bound(t, "negated literal"));
      }
    } else if (l.kind == Literal::Kind::kCompare) {
      DELTAMON_RETURN_IF_ERROR(require_bound(l.args[0], "comparison"));
      DELTAMON_RETURN_IF_ERROR(require_bound(l.args[1], "comparison"));
    } else if (l.kind == Literal::Kind::kArith) {
      DELTAMON_RETURN_IF_ERROR(require_bound(l.args[1], "arithmetic"));
      DELTAMON_RETURN_IF_ERROR(require_bound(l.args[2], "arithmetic"));
    }
  }
  return Status::OK();
}

}  // namespace deltamon::objectlog
