#include "objectlog/registry.h"

namespace deltamon::objectlog {

namespace {

/// Applies a head-variable substitution to a term of an inlined body:
/// variables that were head variables of the inlined clause map to the
/// caller's argument terms; other variables are shifted into fresh ids.
Term SubstituteTerm(const Term& term,
                    const std::unordered_map<int, Term>& head_subst,
                    int offset) {
  if (term.is_const()) return term;
  auto it = head_subst.find(term.var);
  if (it != head_subst.end()) return it->second;
  return Term::Var(term.var + offset);
}

}  // namespace

Status DerivedRegistry::Define(RelationId rel, Clause clause,
                               const Catalog& catalog) {
  if (!catalog.IsDerived(rel)) {
    return Status::InvalidArgument("relation '" + catalog.RelationName(rel) +
                                   "' is not a derived function");
  }
  if (clause.head_relation != rel) {
    return Status::InvalidArgument("clause head does not match relation");
  }
  if (aggregates_.contains(rel)) {
    return Status::AlreadyExists("relation '" + catalog.RelationName(rel) +
                                 "' is an aggregate view");
  }
  const FunctionSignature* sig = catalog.GetSignature(rel);
  if (sig != nullptr && clause.head_args.size() != sig->arity()) {
    return Status::InvalidArgument(
        "clause head arity " + std::to_string(clause.head_args.size()) +
        " does not match signature arity " + std::to_string(sig->arity()) +
        " of '" + catalog.RelationName(rel) + "'");
  }
  DELTAMON_RETURN_IF_ERROR(ValidateClause(clause, catalog));
  if (clause.profile_label.empty()) {
    clause.profile_label = catalog.RelationName(rel) + "#" +
                           std::to_string(clauses_[rel].size());
  }
  clauses_[rel].push_back(std::move(clause));
  return Status::OK();
}

const std::vector<Clause>* DerivedRegistry::GetClauses(RelationId rel) const {
  auto it = clauses_.find(rel);
  return it == clauses_.end() ? nullptr : &it->second;
}

const char* AggregateFuncName(AggregateDef::Func func) {
  switch (func) {
    case AggregateDef::Func::kCount:
      return "count";
    case AggregateDef::Func::kSum:
      return "sum";
    case AggregateDef::Func::kMin:
      return "min";
    case AggregateDef::Func::kMax:
      return "max";
  }
  return "?";
}

Status DerivedRegistry::DefineAggregate(RelationId rel, AggregateDef def,
                                        const Catalog& catalog) {
  if (!catalog.IsDerived(rel)) {
    return Status::InvalidArgument("relation '" + catalog.RelationName(rel) +
                                   "' is not a derived function");
  }
  if (clauses_.contains(rel) || aggregates_.contains(rel)) {
    return Status::AlreadyExists("relation '" + catalog.RelationName(rel) +
                                 "' already has a definition");
  }
  const FunctionSignature* src_sig = catalog.GetSignature(def.source);
  if (src_sig == nullptr) {
    return Status::NotFound("aggregate source relation not found");
  }
  const size_t src_arity = src_sig->arity();
  for (size_t col : def.group_by) {
    if (col >= src_arity) {
      return Status::OutOfRange("group-by column out of range");
    }
  }
  if (def.func != AggregateDef::Func::kCount &&
      def.value_column >= src_arity) {
    return Status::OutOfRange("aggregate value column out of range");
  }
  const FunctionSignature* sig = catalog.GetSignature(rel);
  if (sig != nullptr && sig->arity() != def.group_by.size() + 1) {
    return Status::InvalidArgument(
        "aggregate view arity must be group-by columns + 1, got signature "
        "arity " +
        std::to_string(sig->arity()));
  }
  aggregates_.emplace(rel, std::move(def));
  return Status::OK();
}

const AggregateDef* DerivedRegistry::GetAggregate(RelationId rel) const {
  auto it = aggregates_.find(rel);
  return it == aggregates_.end() ? nullptr : &it->second;
}

Status DerivedRegistry::RegisterForeign(RelationId rel, ForeignImpl impl,
                                        const Catalog& catalog) {
  if (!catalog.IsForeign(rel)) {
    return Status::InvalidArgument("relation '" + catalog.RelationName(rel) +
                                   "' is not a foreign function");
  }
  if (foreign_.contains(rel)) {
    return Status::AlreadyExists("foreign function '" +
                                 catalog.RelationName(rel) +
                                 "' already has an implementation");
  }
  foreign_.emplace(rel, std::move(impl));
  return Status::OK();
}

const ForeignImpl* DerivedRegistry::GetForeign(RelationId rel) const {
  auto it = foreign_.find(rel);
  return it == foreign_.end() ? nullptr : &it->second;
}

bool DerivedRegistry::FindCycle(RelationId rel, RelationId target,
                                std::unordered_set<RelationId>& visited) const {
  if (!visited.insert(rel).second) return false;
  auto reaches = [&](RelationId next) {
    return next == target || FindCycle(next, target, visited);
  };
  const std::vector<Clause>* defs = GetClauses(rel);
  if (defs != nullptr) {
    for (const Clause& clause : *defs) {
      for (const Literal& lit : clause.body) {
        if (lit.kind == Literal::Kind::kRelation && reaches(lit.relation)) {
          return true;
        }
      }
    }
  }
  const AggregateDef* agg = GetAggregate(rel);
  if (agg != nullptr && reaches(agg->source)) return true;
  return false;
}

bool DerivedRegistry::IsRecursive(RelationId rel) const {
  if (!clauses_.contains(rel) && !aggregates_.contains(rel)) return false;
  std::unordered_set<RelationId> visited;
  // Does rel reach itself? (visited guards against unrelated cycles.)
  visited.erase(rel);
  const std::vector<Clause>* defs = GetClauses(rel);
  if (defs != nullptr) {
    for (const Clause& clause : *defs) {
      for (const Literal& lit : clause.body) {
        if (lit.kind != Literal::Kind::kRelation) continue;
        if (lit.relation == rel) return true;
        if (FindCycle(lit.relation, rel, visited)) return true;
      }
    }
  }
  const AggregateDef* agg = GetAggregate(rel);
  if (agg != nullptr &&
      (agg->source == rel || FindCycle(agg->source, rel, visited))) {
    return true;
  }
  return false;
}

Result<std::vector<Clause>> DerivedRegistry::Expand(
    RelationId rel, const std::unordered_set<RelationId>& keep) const {
  const std::vector<Clause>* defs = GetClauses(rel);
  if (defs == nullptr) {
    return Status::NotFound("derived relation id " + std::to_string(rel) +
                            " has no clauses");
  }
  std::vector<Clause> out;
  for (const Clause& clause : *defs) {
    DELTAMON_ASSIGN_OR_RETURN(std::vector<Clause> expanded,
                              ExpandClause(clause, keep));
    for (Clause& c : expanded) out.push_back(std::move(c));
  }
  return out;
}

Result<std::vector<Clause>> DerivedRegistry::ExpandClause(
    const Clause& clause, const std::unordered_set<RelationId>& keep) const {
  // Find the first expandable literal: a positive reference to a derived
  // relation that has clauses and is not protected by `keep`.
  for (size_t i = 0; i < clause.body.size(); ++i) {
    const Literal& lit = clause.body[i];
    if (lit.kind != Literal::Kind::kRelation || lit.negated) continue;
    if (keep.contains(lit.relation)) continue;
    const std::vector<Clause>* defs = GetClauses(lit.relation);
    if (defs == nullptr) continue;  // base relation
    // Recursive relations stay as sub-relation references (fixpoint
    // nodes); sibling occurrences of a non-recursive relation are fine.
    if (IsRecursive(lit.relation)) continue;

    std::vector<Clause> results;
    for (const Clause& def : *defs) {
      // Inline `def` in place of body literal i. def's head variables map
      // to the literal's argument terms; def's other variables shift to
      // fresh ids beyond clause.num_vars.
      std::unordered_map<int, Term> head_subst;
      Clause merged;
      merged.head_relation = clause.head_relation;
      merged.head_args = clause.head_args;
      merged.num_vars = clause.num_vars;
      merged.var_names = clause.var_names;
      merged.var_names.resize(clause.num_vars);

      std::vector<Literal> extra;  // equality checks for constant heads
      for (size_t k = 0; k < def.head_args.size(); ++k) {
        const Term& h = def.head_args[k];
        const Term& a = lit.args[k];
        if (h.is_var() && !head_subst.contains(h.var)) {
          head_subst[h.var] = a;
        } else {
          // Repeated head variable or constant head: require equality
          // between the caller's term and the substituted/constant term.
          Term prev = h.is_var() ? head_subst[h.var] : h;
          extra.push_back(Literal::Compare(CompareOp::kEq, a, prev));
        }
      }
      int offset = merged.num_vars;
      // Allocate fresh ids for def's non-head variables. Shifted ids are
      // def_var + offset; reserve space for all of def's vars (some slots
      // unused where head vars were substituted away).
      merged.num_vars += def.num_vars;
      merged.var_names.resize(merged.num_vars);
      for (int v = 0; v < def.num_vars; ++v) {
        if (!head_subst.contains(v)) {
          std::string name =
              (static_cast<size_t>(v) < def.var_names.size() &&
               !def.var_names[v].empty())
                  ? def.var_names[v]
                  : "V" + std::to_string(v);
          merged.var_names[v + offset] = name + "'";
        }
      }

      for (size_t j = 0; j < clause.body.size(); ++j) {
        if (j == i) {
          for (const Literal& dl : def.body) {
            Literal nl = dl;
            for (Term& t : nl.args) t = SubstituteTerm(t, head_subst, offset);
            merged.body.push_back(std::move(nl));
          }
          for (const Literal& el : extra) merged.body.push_back(el);
        } else {
          merged.body.push_back(clause.body[j]);
        }
      }
      // Recurse: the merged clause may still contain expandable literals
      // (from both the original tail and the inlined body).
      DELTAMON_ASSIGN_OR_RETURN(std::vector<Clause> sub,
                                ExpandClause(merged, keep));
      for (Clause& c : sub) results.push_back(std::move(c));
    }
    return results;
  }
  // Nothing to expand.
  return std::vector<Clause>{clause};
}

std::vector<RelationId> DerivedRegistry::DirectDependencies(
    const std::vector<Clause>& clauses) {
  std::vector<RelationId> out;
  std::unordered_set<RelationId> seen;
  for (const Clause& clause : clauses) {
    for (const Literal& lit : clause.body) {
      if (lit.kind != Literal::Kind::kRelation) continue;
      if (seen.insert(lit.relation).second) out.push_back(lit.relation);
    }
  }
  return out;
}

}  // namespace deltamon::objectlog
