#ifndef DELTAMON_OBJECTLOG_EVAL_H_
#define DELTAMON_OBJECTLOG_EVAL_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "delta/delta_set.h"
#include "objectlog/ast.h"
#include "objectlog/registry.h"
#include "obs/profile.h"
#include "storage/database.h"
#include "storage/snapshot.h"
#include "storage/stats_store.h"

namespace deltamon::objectlog {

/// The evaluation context tying a clause evaluation to database states:
///  - `deltas` supplies, per relation, the Δ-set accumulated so far. It is
///    read by Δ-role literals of partial differentials, and used to
///    reconstruct the OLD state of base relations via logical rollback
///    (paper fig. 3: S_old = (S_new ∪ Δ−S) − Δ+S).
/// Relations without an entry are treated as unchanged (OLD == NEW).
struct StateContext {
  const std::unordered_map<RelationId, DeltaSet>* deltas = nullptr;
  /// Materialized extents of derived relations (e.g. from a
  /// core::MaterializedViewStore). When a derived relation has an entry it
  /// is scanned like a stored relation — indexed, with OLD state by
  /// rollback over `deltas` — instead of being re-derived from its
  /// definition.
  const std::unordered_map<RelationId, const BaseRelation*>* views = nullptr;

  /// Per-node override used by the propagator: DeltaFor(overlay_rel)
  /// answers `*overlay_delta` instead of consulting `deltas`, shadowing any
  /// entry there. This lets one node's evaluation see a private Δ-set (the
  /// recursive fixpoint frontier) without mutating the wave map other
  /// nodes — possibly on other threads — are concurrently reading. The
  /// pointee may be updated between evaluations; the pointer must stay
  /// valid for the evaluator's lifetime.
  RelationId overlay_rel = kInvalidRelationId;
  const DeltaSet* overlay_delta = nullptr;

  /// Relation whose `views` entry is ignored, as if absent. While a node's
  /// own Δ-set is being computed, point queries against it (the §7.2
  /// filters) must evaluate its *definition* — its maintained extent is
  /// still the pre-wave state. Same thread-safety motivation as the
  /// overlay: hiding via context beats extracting from the shared map.
  RelationId hidden_view = kInvalidRelationId;

  /// Non-null while a session statement evaluates inside an open
  /// transaction: every NEW-state read of a *stored* relation sees the
  /// transaction's view (store − overlay.minus ∪ overlay.plus) and is
  /// recorded into the snapshot's read footprint for commit-time
  /// validation. Propagation contexts never set this — the check phase
  /// runs after overlays are applied, against the shared store.
  TxnSnapshot* txn = nullptr;

  /// Restricts the Δ-role generator of a partial differential to a single
  /// influent row. A differential clause has exactly one Δ-role literal
  /// (the differenced one, placed first by OrderBody); when `restrict_delta`
  /// is armed and matches that literal's (relation, polarity), the
  /// generator iterates only `*row` instead of the whole Δ-side — so the
  /// emitted head tuples are exactly the ones this row contributes, and
  /// the union over all rows equals the unrestricted result. Used by the
  /// lineage-capturing propagator; OLD-state rollback reads are unaffected.
  /// Pointer indirection (like overlay_delta) because the evaluator copies
  /// its context by value: the caller mutates the pointee between calls.
  struct RowRestriction {
    RelationId relation = kInvalidRelationId;
    bool plus = true;
    const Tuple* row = nullptr;
  };
  const RowRestriction* restrict_delta = nullptr;

  const DeltaSet* DeltaFor(RelationId rel) const {
    if (rel == overlay_rel && overlay_delta != nullptr) return overlay_delta;
    if (deltas == nullptr) return nullptr;
    auto it = deltas->find(rel);
    return it == deltas->end() ? nullptr : &it->second;
  }

  const BaseRelation* ViewFor(RelationId rel) const {
    if (views == nullptr || rel == hidden_view) return nullptr;
    auto it = views->find(rel);
    return it == views->end() ? nullptr : it->second;
  }
};

/// Memoizes fully materialized extents of derived relations per
/// (relation, state) during one evaluation wave, so bushy networks and
/// repeated sub-queries don't recompute views.
class EvalCache {
 public:
  TupleSet* Find(RelationId rel, EvalState state);
  TupleSet* Insert(RelationId rel, EvalState state, TupleSet extent);

  /// Indexed extents (used for recursive relations, whose materializations
  /// are probed many times with bound columns during fixpoint evaluation).
  /// `retainable` marks an entry as safe to survive BeginWave: the extent
  /// was computed from shared state only (no node-local overlay, hidden
  /// view, or transaction snapshot leaked into it).
  BaseRelation* FindIndexed(RelationId rel, EvalState state);
  BaseRelation* InsertIndexed(RelationId rel, EvalState state,
                              std::unique_ptr<BaseRelation> extent,
                              bool retainable = false);

  void Clear() {
    extents_.clear();
    indexed_.clear();
  }

  /// Opens a new propagation wave. Positional extents are always dropped
  /// (wave-scoped memoization, cheap to rebuild); indexed extents — the
  /// expensive recursive-fixpoint materializations — persist across waves
  /// unless they are non-retainable or `drop(rel, state)` reports that the
  /// extent's inputs may have changed since it was built.
  void BeginWave(const std::function<bool(RelationId, EvalState)>& drop);

  /// Lifetime counters for the retention regression tests: indexed extents
  /// built vs. served from a previous insert (hits within one wave and
  /// across retained waves both count as reuses).
  uint64_t indexed_inserts() const { return indexed_inserts_; }
  uint64_t indexed_reuses() const { return indexed_reuses_; }

 private:
  /// (relation, state) packed into one word: hot lookups hash a uint64_t
  /// instead of walking a std::map of pairs. Pointers into the mapped
  /// values stay valid across rehash (std::unordered_map guarantee), which
  /// Find/Insert rely on.
  static uint64_t Key(RelationId rel, EvalState state) {
    return (static_cast<uint64_t>(rel) << 32) |
           static_cast<uint32_t>(static_cast<int>(state));
  }

  struct IndexedEntry {
    std::unique_ptr<BaseRelation> extent;
    bool retainable = false;
  };

  std::unordered_map<uint64_t, TupleSet> extents_;
  std::unordered_map<uint64_t, IndexedEntry> indexed_;
  uint64_t indexed_inserts_ = 0;
  uint64_t indexed_reuses_ = 0;
};

/// Evaluates ObjectLog clauses against a database, honoring per-literal
/// state (NEW/OLD) and Δ-role annotations produced by the differencer.
/// Single-threaded; borrows all its inputs.
class Evaluator {
 public:
  struct Stats {
    uint64_t clause_evals = 0;
    uint64_t literal_probes = 0;   // relation literal evaluations started
    uint64_t tuples_examined = 0;  // tuples produced by scans/probes
    uint64_t bindings_produced = 0;  // variables bound by literal matches
  };

  /// `cache` may be null; a private cache is then used per call.
  Evaluator(const Database& db, const DerivedRegistry& registry,
            StateContext ctx, EvalCache* cache = nullptr);

  /// Publishes the accumulated Stats into the global obs registry
  /// (`eval.*` counters) — one batch per evaluator lifetime, so the
  /// per-tuple hot paths only ever touch the local struct.
  ~Evaluator();

  /// Appends to `out` every head tuple derivable from `clause`. Δ-role
  /// literals read ctx.deltas; kOld literals read the rolled-back state.
  Status EvaluateClause(const Clause& clause, TupleSet* out);

  /// Like EvaluateClause, with some variables pre-bound (e.g. binding a
  /// rule's condition instance while evaluating its action arguments).
  Status EvaluateClauseWithBindings(
      const Clause& clause,
      const std::vector<std::pair<int, Value>>& bindings, TupleSet* out);

  /// Materializes the full extent of `rel` (base or derived) in `state`.
  /// For derived relations in kOld, every transitive base literal is
  /// evaluated in the old state.
  Status Evaluate(RelationId rel, EvalState state, TupleSet* out);

  /// Point query: is `t` in the extent of `rel` in `state`? Implemented
  /// without materializing the extent (binds the head and checks
  /// satisfiability). Used by the §7.2 strict-semantics filters.
  Result<bool> Derivable(RelationId rel, EvalState state, const Tuple& t);

  /// Collects the tuples of `rel` in `state` matching `pattern` (bound
  /// positions are pushed down: indexed for base relations, head bindings
  /// for derived ones, group restriction for aggregates).
  Status Probe(RelationId rel, EvalState state, const ScanPattern& pattern,
               TupleSet* out);

  const Stats& stats() const { return stats_; }

  /// Attaches a per-literal profiler: every clause evaluated from now on
  /// records rows-in / bindings-tried / rows-out / probe-vs-scan / time
  /// into `profile` (owned by the caller; pass nullptr to detach). One
  /// profile per evaluator — the propagator gives each worker its own and
  /// merges them serially, exactly like EvalCache.
  void SetProfiler(obs::Profile* profile) { profiler_ = profile; }

  /// Enables the batch (set-at-a-time) execution path for EvaluateClause:
  /// eligible partial differentials evaluate through columnar Δ-tables and
  /// build–probe hash-join kernels (see docs/kernels.md) instead of the
  /// tuple-at-a-time interpreter; ineligible clauses (aggregates, foreign
  /// or recursive literals, non-equi bindings, transactional contexts)
  /// silently fall back. Off by default — the propagator switches it on
  /// per PropagationOptions::kernels.
  void EnableKernels(bool on) { kernels_ = on; }
  bool kernels_enabled() const { return kernels_; }

  /// Chooses an execution order for `body` (indexes into it): the Δ-role
  /// generator first, then greedily by boundness — filters and binders as
  /// soon as evaluable, then indexed probes (most bound args first), then
  /// scans. Exposed for tests.
  static std::vector<size_t> OrderBody(const std::vector<Literal>& body,
                                       int num_vars);

  /// Overload with pre-bound variables (e.g. a probed view's head bindings
  /// or EvaluateClauseWithBindings' initial environment).
  static std::vector<size_t> OrderBody(const std::vector<Literal>& body,
                                       int num_vars,
                                       const std::vector<bool>& initial_bound);

  /// Overload consulting observed selectivities: within the indexed-probe
  /// band, a probe whose (relation, role, nbound) key has recorded stats is
  /// scored by how selective it proved to be instead of by raw boundness.
  /// With `stats` null or the key unseen, behaves exactly like the
  /// boundness-only overloads. Internal evaluation passes the catalog's
  /// StatsStore here; the two-/three-argument forms forward nullptr.
  static std::vector<size_t> OrderBody(const std::vector<Literal>& body,
                                       int num_vars,
                                       const std::vector<bool>& initial_bound,
                                       const StatsStore* stats);

 private:
  using Env = std::vector<std::optional<Value>>;

  /// Forces every extent-role literal into `state` when state_override is
  /// engaged (used to evaluate a whole relation in the old state).
  /// `prof` (nullable) receives per-literal counters, indexed by body
  /// position so re-ordered probe-path evaluations fold into the same
  /// slots. Dispatches once to EvalBodyImpl<kProfiled> so the detached
  /// path (prof == nullptr) recurses through an instantiation with every
  /// profiler branch folded away.
  Status EvalBody(const Clause& clause, const std::vector<size_t>& order,
                  size_t step, Env& env,
                  std::optional<EvalState> state_override,
                  const std::function<Status(const Env&)>& emit, bool* stop,
                  obs::ClauseProfile* prof);

  template <bool kProfiled>
  Status EvalBodyImpl(const Clause& clause, const std::vector<size_t>& order,
                      size_t step, Env& env,
                      std::optional<EvalState> state_override,
                      const std::function<Status(const Env&)>& emit,
                      bool* stop, obs::ClauseProfile* prof);

  /// Create-or-get the attached profiler's entry for `clause`, counting
  /// one invocation. On first sight, fills the per-slot metadata (literal
  /// text, canonical rank, access kind, estimated rows) from the canonical
  /// no-prebound order — a deterministic function of the clause and the
  /// stats visible at ordering time, so every worker computes identical
  /// metadata. Returns nullptr when no profiler is attached.
  obs::ClauseProfile* BeginClauseProfile(const Clause& clause);

  /// Cardinality guess for the optimizer's estimate chain: the extent size
  /// for stored relations and materialized views, a nominal constant for
  /// derived relations that would need materializing to count.
  double ExtentEstimate(RelationId rel) const;

  /// Scans the extent of `rel` in `state` matching `pattern`.
  Status ScanRelation(RelationId rel, EvalState state,
                      const ScanPattern& pattern,
                      const std::function<bool(const Tuple&)>& fn);

  /// Scans an aggregate view (§8 extension): folds the (possibly
  /// group-restricted) source extent and emits (group..., value) tuples.
  Status ScanAggregate(RelationId rel, const AggregateDef& def,
                       EvalState state, const ScanPattern& pattern,
                       const std::function<bool(const Tuple&)>& fn);

  /// Materializes a recursive relation's extent by naive fixpoint
  /// iteration (paper §5 footnote: "fixed point techniques") into the
  /// cache as an indexed relation; self-references inside the definition
  /// read the previous rounds' partial extent. Returns the cached extent.
  Result<const BaseRelation*> FixpointMaterialize(RelationId rel,
                                                  EvalState state);

  /// Membership of `t` in `rel`'s extent in `state`.
  Result<bool> Contains(RelationId rel, EvalState state, const Tuple& t);

  Result<Value> TermValue(const Term& term, const Env& env) const;

  /// Batch kernel entry point (eval_kernel.cc): attempts to evaluate the
  /// whole clause set-at-a-time over a columnar Δ-table. Returns true if it
  /// handled the clause (out filled), false to fall back to the
  /// tuple-at-a-time interpreter (ineligible shape).
  Result<bool> TryEvaluateClauseKernel(const Clause& clause, TupleSet* out);

  /// True when a materialized extent of `rel` depends only on shared state:
  /// no transaction snapshot, and no relation in its dependency closure is
  /// shadowed by this context's overlay or hidden view. Such extents may be
  /// retained in the cache across waves (EvalCache::BeginWave).
  bool CacheRetainSafe(RelationId rel) const;

  const Database& db_;
  const DerivedRegistry& registry_;
  StateContext ctx_;
  EvalCache* cache_;
  EvalCache own_cache_;
  Stats stats_;
  obs::Profile* profiler_ = nullptr;
  bool kernels_ = false;
};

}  // namespace deltamon::objectlog

#endif  // DELTAMON_OBJECTLOG_EVAL_H_
