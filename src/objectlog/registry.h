#ifndef DELTAMON_OBJECTLOG_REGISTRY_H_
#define DELTAMON_OBJECTLOG_REGISTRY_H_

#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "objectlog/ast.h"

namespace deltamon::objectlog {

/// A group-by aggregate view (the paper's §8 "extending the calculus to
/// handle aggregates" future work, implemented as an extension): the
/// relation's extent is
///
///   { (g1..gk, F(value over matching source tuples)) }
///
/// for every group key present in the source. COUNT with no group columns
/// yields a single (0) tuple on an empty source; the other functions yield
/// nothing for empty groups.
///
/// Aggregate views are never expanded; in a propagation network they form
/// an intermediate node whose delta is computed per *affected group*: the
/// group keys mentioned in the source Δ-set are re-aggregated in the old
/// and new states and diffed — incremental in the number of touched
/// groups, not the size of the source.
struct AggregateDef {
  enum class Func { kCount, kSum, kMin, kMax };

  RelationId source = kInvalidRelationId;
  /// Source columns forming the group key (may be empty: global
  /// aggregate). They become the leading result columns.
  std::vector<size_t> group_by;
  /// Source column being aggregated (ignored for kCount).
  size_t value_column = 0;
  Func func = Func::kCount;
};

const char* AggregateFuncName(AggregateDef::Func func);

/// Implementation of a foreign function (paper §3, [15]): produces the
/// current extent, restricted by the bound positions of `pattern` where
/// convenient (the evaluator re-filters, so ignoring the pattern is
/// correct, just slower). `emit` returning false stops the scan.
/// Implementations must be deterministic between the change notifications
/// the user injects (Database::InjectForeignDelta) — the monitoring
/// calculus reconstructs old states by rolling the injected Δ-sets back
/// over whatever the implementation currently returns.
using ForeignImpl = std::function<Status(
    const ScanPattern& pattern, const std::function<bool(const Tuple&)>& emit)>;

/// Registry of derived-relation definitions (relational views / derived
/// functions). A derived relation is a list of clauses; several clauses
/// form a disjunction (DNF).
///
/// Also implements *expansion* (flattening): the AMOSQL compiler "expands
/// as many derived relations as possible to have more degrees of freedom
/// for optimizations" (paper §4.3), which yields the flat propagation
/// network of fig. 2. Expansion can be suppressed per relation to produce
/// the bushy, node-sharing networks of §7.1.
class DerivedRegistry {
 public:
  DerivedRegistry() = default;
  DerivedRegistry(const DerivedRegistry&) = delete;
  DerivedRegistry& operator=(const DerivedRegistry&) = delete;

  /// Appends a clause to `rel`'s definition (validated against `catalog`).
  Status Define(RelationId rel, Clause clause, const Catalog& catalog);

  /// Defines `rel` as an aggregate view (mutually exclusive with clauses).
  Status DefineAggregate(RelationId rel, AggregateDef def,
                         const Catalog& catalog);

  /// Null if `rel` is not an aggregate view.
  const AggregateDef* GetAggregate(RelationId rel) const;

  /// Registers the implementation of a foreign function created with
  /// Catalog::CreateForeignFunction.
  Status RegisterForeign(RelationId rel, ForeignImpl impl,
                         const Catalog& catalog);

  /// Null if `rel` has no foreign implementation.
  const ForeignImpl* GetForeign(RelationId rel) const;

  /// Whether `rel` participates in a definition cycle (through clauses or
  /// aggregate sources). Recursive relations are evaluated by fixpoint
  /// iteration and are never expanded (paper §5 footnote: the algorithm
  /// extends to linear recursion "by revisiting nodes below and using
  /// fixed point techniques").
  bool IsRecursive(RelationId rel) const;

  bool IsDefined(RelationId rel) const { return clauses_.contains(rel); }
  /// Null if `rel` has no clauses.
  const std::vector<Clause>* GetClauses(RelationId rel) const;

  /// Returns `rel`'s clauses with every positive literal over a derived
  /// relation NOT in `keep` recursively replaced by that relation's body
  /// (clause product for disjunctions). Negated derived literals are never
  /// expanded (negating a conjunction is not expressible in clause form),
  /// and neither are recursive relations (they must stay as network nodes
  /// to be iterated to a fixpoint); both stay as sub-relation references.
  Result<std::vector<Clause>> Expand(
      RelationId rel, const std::unordered_set<RelationId>& keep) const;

  /// Distinct relations referenced by the bodies of `clauses`.
  static std::vector<RelationId> DirectDependencies(
      const std::vector<Clause>& clauses);

 private:
  /// DFS cycle detection for IsRecursive.
  bool FindCycle(RelationId rel, RelationId target,
                 std::unordered_set<RelationId>& visited) const;
  Result<std::vector<Clause>> ExpandClause(
      const Clause& clause, const std::unordered_set<RelationId>& keep) const;

  std::unordered_map<RelationId, std::vector<Clause>> clauses_;
  std::unordered_map<RelationId, AggregateDef> aggregates_;
  std::unordered_map<RelationId, ForeignImpl> foreign_;
};

}  // namespace deltamon::objectlog

#endif  // DELTAMON_OBJECTLOG_REGISTRY_H_
