#include "txn/manager.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "obs/metrics.h"

namespace deltamon::txn {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void TransactionManager::Begin(TxnSnapshot& txn) {
  uint64_t v = current_version();
  txn.Reset(v);
  std::lock_guard<std::mutex> lk(amu_);
  actives_[&txn] = v;
}

void TransactionManager::Release(TxnSnapshot& txn) {
  std::lock_guard<std::mutex> lk(amu_);
  actives_.erase(&txn);
}

Status TransactionManager::Commit(TxnSnapshot& txn, obs::Profile* profiler) {
  Waiter w;
  w.txn = &txn;
  w.profiler = profiler;
  w.enqueue_ns = NowNs();

  std::unique_lock<std::mutex> lk(qmu_);
  queue_.push_back(&w);
  while (!w.done) {
    if (!leader_active_ && !paused_) {
      // Leader election: the first unblocked waiter leads, committing
      // front-of-queue waves until its own transaction is done (or the
      // queue is paused), then hands leadership to whoever is left.
      leader_active_ = true;
      while (!w.done && !paused_) {
        std::vector<Waiter*> batch = TakeBatchLocked();
        lk.unlock();
        CommitBatch(batch);
        lk.lock();
        for (Waiter* b : batch) b->done = true;
        qcv_.notify_all();
      }
      leader_active_ = false;
      qcv_.notify_all();
    } else {
      qcv_.wait(lk);
    }
  }
  return w.result;
}

std::vector<TransactionManager::Waiter*> TransactionManager::TakeBatchLocked() {
  std::vector<Waiter*> batch;
  while (!queue_.empty() && batch.size() < max_batch_) {
    Waiter* w = queue_.front();
    // Profiled commits run solo: the per-literal profile must describe one
    // transaction's check phase, not a shared wave.
    if (w->profiler != nullptr && !batch.empty()) break;
    queue_.pop_front();
    batch.push_back(w);
    if (w->profiler != nullptr) break;
  }
  return batch;
}

void TransactionManager::CommitBatch(const std::vector<Waiter*>& batch) {
  std::unique_lock<std::shared_mutex> gate(engine_mu_);
  const uint64_t start_ns = NowNs();
  const uint64_t base_version = version_.load(std::memory_order_relaxed);
  uint64_t next_version = base_version;

  // 1. Validate in queue order; survivors' tentative records join `fresh`
  // so later batch members validate against them too (first committer
  // wins *within* the wave as well).
  std::vector<CommitRecord> fresh;
  std::vector<Waiter*> survivors;
  for (Waiter* w : batch) {
    DELTAMON_OBS_RECORD("txn.commit_queue_wait_ns", start_ns - w->enqueue_ns);
    Status v = Validate(*w->txn, fresh);
    if (!v.ok()) {
      w->result = std::move(v);
      DELTAMON_OBS_COUNT("txn.aborts.conflict", 1);
      continue;
    }
    CommitRecord rec;
    rec.version = ++next_version;
    rec.writes = w->txn->writes();
    fresh.push_back(std::move(rec));
    survivors.push_back(w);
  }

  uint64_t check_ns = 0;
  if (!survivors.empty()) {
    // 2. Apply the surviving overlays — undo-logged, folded into the
    // pending Δ-sets of monitored relations, no immediate check.
    Status wave = Status::OK();
    const size_t pre = db_.LogSize();
    for (Waiter* w : survivors) {
      wave = db_.ApplyOverlay(w->txn->writes());
      if (!wave.ok()) break;
    }
    const size_t post = db_.LogSize();

    // 3. ONE deferred check phase over the unioned Δ-sets of the wave.
    if (wave.ok()) {
      obs::Profile* profiler =
          batch.size() == 1 ? batch.front()->profiler : nullptr;
      if (profiler != nullptr) rules_.SetProfiler(profiler);
      // Versions were pre-assigned during validation, so the wave's last
      // version is already known: stamp it on the rule manager (same
      // attach/detach discipline as the profiler) so firing provenance
      // and wave capture record the version their changes commit at.
      rules_.SetCommitVersion(next_version);
      const uint64_t c0 = NowNs();
      wave = rules_.CheckPhase(db_);
      check_ns = NowNs() - c0;
      rules_.SetCommitVersion(0);
      if (profiler != nullptr) rules_.SetProfiler(nullptr);
    }

    if (!wave.ok()) {
      // A failed wave takes every survivor down: physically undo all
      // uncommitted events (including the applied overlays) and report
      // the — non-retryable — error to each. Versions were never
      // published, so concurrent snapshots are unaffected.
      db_.Rollback();
      for (Waiter* w : survivors) w->result = wave;
      survivors.clear();
      fresh.clear();
      next_version = base_version;
    } else {
      // 4. Rule-action writes (the undo-log tail beyond the applied
      // overlays) plus any direct non-transactional writes that predated
      // the wave (e.g. `create instances` under DDL) become one extra
      // history record, so concurrent snapshots that read what an action
      // rewrote conflict like against any other committer.
      CommitRecord extra;
      const std::vector<UpdateEvent>& log = db_.UndoLog();
      auto fold = [&extra](const UpdateEvent& e) {
        DeltaSet& d = extra.writes[e.relation];
        if (e.op == UpdateEvent::Op::kInsert) {
          d.ApplyInsert(e.tuple);
        } else {
          d.ApplyDelete(e.tuple);
        }
      };
      for (size_t i = 0; i < pre; ++i) fold(log[i]);
      for (size_t i = post; i < log.size(); ++i) fold(log[i]);
      for (auto it = extra.writes.begin(); it != extra.writes.end();) {
        it = it->second.empty() ? extra.writes.erase(it) : std::next(it);
      }
      if (!extra.writes.empty()) {
        extra.version = ++next_version;
        fresh.push_back(std::move(extra));
      }

      // Publish: stamp per-relation commit versions, retain the records,
      // advance the version clock, and clear the log + pending Δ-sets.
      for (CommitRecord& rec : fresh) {
        for (const auto& [rel, delta] : rec.writes) {
          if (BaseRelation* base = db_.catalog().GetBaseRelation(rel)) {
            base->set_last_commit_version(rec.version);
          }
        }
        history_.push_back(std::move(rec));
      }
      version_.store(next_version, std::memory_order_release);
      db_.CommitWithoutCheck();

      const uint64_t batch_id = ++batch_counter_;
      DELTAMON_OBS_COUNT("txn.batches", 1);
      DELTAMON_OBS_COUNT("txn.commits", survivors.size());
      DELTAMON_OBS_RECORD("txn.batch_size", survivors.size());
      for (size_t i = 0; i < survivors.size(); ++i) {
        Waiter* w = survivors[i];
        w->result = Status::OK();
        w->txn->last_commit = TxnSnapshot::CommitInfo{
            /*version=*/base_version + i + 1,
            /*batch_id=*/batch_id,
            /*batch_size=*/survivors.size(),
            /*queue_wait_ns=*/start_ns - w->enqueue_ns,
            /*check_ns=*/check_ns};
      }
    }
  }

  // Every batch member — committed, conflicted, or failed — restarts at
  // the (possibly advanced) current version: overlays and footprints are
  // discarded, so a retry re-runs its statements against fresh state.
  {
    std::lock_guard<std::mutex> alk(amu_);
    const uint64_t v = version_.load(std::memory_order_relaxed);
    for (Waiter* w : batch) {
      w->txn->Reset(v);
      actives_[w->txn] = v;
    }
    PruneHistoryLocked();
  }
}

Status TransactionManager::Validate(
    const TxnSnapshot& txn, const std::vector<CommitRecord>& fresh) const {
  const uint64_t begin = txn.begin_version();

  // Relation-level pre-filter: if nothing this transaction touched has
  // committed since its snapshot, no record can conflict — the common
  // (disjoint) case never walks the history.
  auto changed_since = [&](RelationId rel) {
    const BaseRelation* base = db_.catalog().GetBaseRelation(rel);
    return base != nullptr && base->last_commit_version() > begin;
  };
  bool maybe = false;
  for (const auto& [rel, delta] : txn.writes()) {
    if (changed_since(rel)) {
      maybe = true;
      break;
    }
  }
  if (!maybe) {
    for (const auto& [rel, fp] : txn.reads()) {
      if (changed_since(rel)) {
        maybe = true;
        break;
      }
    }
  }
  if (maybe) {
    if (begin < pruned_through_) {
      return Status::TxnConflict(
          "snapshot predates retained commit history; retry");
    }
    // History is ascending by version; skip records the snapshot saw.
    auto it = std::partition_point(
        history_.begin(), history_.end(),
        [begin](const CommitRecord& rec) { return rec.version <= begin; });
    for (; it != history_.end(); ++it) {
      DELTAMON_RETURN_IF_ERROR(CheckRecord(txn, *it));
    }
  }
  // Earlier survivors of the wave being built always postdate the
  // snapshot (their versions are not yet stamped, so the pre-filter
  // cannot vouch for them).
  for (const CommitRecord& rec : fresh) {
    DELTAMON_RETURN_IF_ERROR(CheckRecord(txn, rec));
  }
  return Status::OK();
}

Status TransactionManager::CheckRecord(const TxnSnapshot& txn,
                                       const CommitRecord& rec) const {
  // Write-write at tuple granularity: two transactions may append
  // disjoint tuples to the same relation, but not touch the same tuple.
  for (const auto& [rel, mine] : txn.writes()) {
    auto it = rec.writes.find(rel);
    if (it == rec.writes.end()) continue;
    const DeltaSet& theirs = it->second;
    auto touches = [&theirs](const TupleSet& side) {
      for (const Tuple& t : side) {
        if (theirs.plus().contains(t) || theirs.minus().contains(t)) {
          return true;
        }
      }
      return false;
    };
    if (touches(mine.plus()) || touches(mine.minus())) {
      return Conflict(rel, rec, "write-write");
    }
  }
  // Read-write at scan-pattern granularity: a committed tuple matching
  // any pattern this transaction read with means the read would answer
  // differently today than it did.
  for (const auto& [rel, fp] : txn.reads()) {
    auto it = rec.writes.find(rel);
    if (it == rec.writes.end()) continue;
    if (fp.Overlaps(it->second)) return Conflict(rel, rec, "read-write");
  }
  return Status::OK();
}

Status TransactionManager::Conflict(RelationId rel, const CommitRecord& rec,
                                    const char* kind) const {
  return Status::TxnConflict(
      std::string(kind) + " conflict on '" + db_.catalog().RelationName(rel) +
      "' with a transaction committed at v" + std::to_string(rec.version) +
      "; retry the transaction");
}

void TransactionManager::PruneHistoryLocked() {
  uint64_t floor = version_.load(std::memory_order_relaxed);
  for (const auto& [snap, begin] : actives_) floor = std::min(floor, begin);
  while (!history_.empty() && history_.front().version <= floor) {
    history_.pop_front();
  }
  while (history_.size() > kMaxHistory) {
    pruned_through_ = std::max(pruned_through_, history_.front().version);
    history_.pop_front();
  }
}

void TransactionManager::SetCommitPaused(bool paused) {
  std::lock_guard<std::mutex> lk(qmu_);
  paused_ = paused;
  qcv_.notify_all();
}

size_t TransactionManager::queued_commits() const {
  std::lock_guard<std::mutex> lk(qmu_);
  return queue_.size();
}

void TransactionManager::SetMaxBatch(size_t k) {
  std::lock_guard<std::mutex> lk(qmu_);
  max_batch_ = k == 0 ? 1 : k;
}

size_t TransactionManager::max_batch() const {
  std::lock_guard<std::mutex> lk(qmu_);
  return max_batch_;
}

size_t TransactionManager::history_size() const { return history_.size(); }

}  // namespace deltamon::txn
