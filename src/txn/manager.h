#ifndef DELTAMON_TXN_MANAGER_H_
#define DELTAMON_TXN_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/profile.h"
#include "rules/rule_manager.h"
#include "storage/database.h"
#include "storage/snapshot.h"

namespace deltamon::txn {

/// Concurrency control for one Engine (ROADMAP item 2): optimistic
/// transactions with buffered writes (TxnSnapshot overlays), a group-commit
/// queue that batches the Δ-sets of up to max_batch() ready transactions
/// into a single deferred check-phase wave (∪Δ before propagation — the
/// paper's amortization applied across transactions), and
/// first-committer-wins validation on read/write footprints.
///
/// Locking model:
///  - `engine_mutex()` is the engine gate. Statements that read or buffer
///    against the shared store hold it shared; DDL and admin commands that
///    mutate the catalog or rule set hold it exclusive; the commit leader
///    holds it exclusive for the whole wave (validate → apply → check).
///  - The commit queue has its own mutex; it is never held across the
///    engine gate.
///  - The active-transaction registry has its own small mutex, only ever
///    acquired after (or without) the engine gate, never before it.
///
/// Commit protocol (leader/follower): every committing thread enqueues a
/// waiter; the first unblocked waiter elects itself leader, drains up to
/// max_batch() waiters from the front of the queue, and commits them as
/// one wave under the exclusive engine gate:
///   1. validate each transaction in queue order against the commit
///      history AND the earlier survivors of this wave (first committer
///      wins; losers get a retryable kTxnConflict and drop out),
///   2. apply the survivors' overlays through Database::ApplyOverlay
///      (undo-logged, Δ-sets folded),
///   3. run ONE check phase over the unioned Δ-sets,
///   4. capture rule-action writes (the undo-log tail beyond the applied
///      overlays) as one extra history record, stamp per-relation commit
///      versions, append history, Database::CommitWithoutCheck().
/// A check-phase failure rolls the whole wave back physically and fails
/// every survivor with the (non-retryable) check error.
class TransactionManager {
 public:
  static constexpr size_t kDefaultMaxBatch = 16;
  /// Commit-history cap: beyond this many retained records the oldest are
  /// force-pruned and transactions older than the pruned range validate
  /// conservatively (conflict if any relation they touched has committed
  /// at all since their snapshot).
  static constexpr size_t kMaxHistory = 4096;

  TransactionManager(Database& db, rules::RuleManager& rules)
      : db_(db), rules_(rules) {}
  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  /// The engine gate (see class comment). Sessions take it shared for
  /// read/DML statements and exclusive for DDL/admin statements.
  std::shared_mutex& engine_mutex() { return engine_mu_; }

  /// The version of the latest committed wave; new snapshots begin here.
  uint64_t current_version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// (Re-)registers `txn` as active at the current version, discarding any
  /// buffered writes and recorded reads. Begin, abort, and the per-
  /// statement autocommit refresh are all this. Call while holding the
  /// engine gate (shared suffices) so the version matches visible state.
  void Begin(TxnSnapshot& txn);

  /// Unregisters `txn` (session teardown); its begin version no longer
  /// pins commit history.
  void Release(TxnSnapshot& txn);

  /// Commits `txn` through the group-commit queue; blocks until its wave
  /// completes. Returns OK (txn.last_commit describes the wave),
  /// kTxnConflict (retryable: the overlay was discarded, the snapshot
  /// re-registered at the current version), or the check phase's own error
  /// (non-retryable; the whole wave was rolled back). Must be called
  /// WITHOUT the engine gate held. A non-null `profiler` forces a
  /// batch-of-one so per-literal profiles never interleave waves.
  Status Commit(TxnSnapshot& txn, obs::Profile* profiler = nullptr);

  /// --- Test hooks --------------------------------------------------------

  /// While paused, commits queue up without a leader; Resume (paused =
  /// false) lets one leader drain them — up to max_batch() in ONE wave,
  /// which is exactly what the group-commit batching tests observe.
  void SetCommitPaused(bool paused);
  size_t queued_commits() const;
  void SetMaxBatch(size_t k);
  size_t max_batch() const;
  size_t history_size() const;

 private:
  struct Waiter {
    TxnSnapshot* txn = nullptr;
    obs::Profile* profiler = nullptr;
    uint64_t enqueue_ns = 0;
    Status result = Status::OK();
    bool done = false;
  };

  /// What one committed transaction (or one wave's rule actions) wrote,
  /// retained for first-committer-wins validation of concurrent snapshots.
  struct CommitRecord {
    uint64_t version = 0;
    std::unordered_map<RelationId, DeltaSet> writes;
  };

  /// Pops the next wave off the queue front: up to max_batch_ waiters,
  /// with profiled commits always alone in their wave. Requires qmu_.
  std::vector<Waiter*> TakeBatchLocked();

  /// Runs one wave (steps 1–4 of the class comment) under the exclusive
  /// engine gate, filling each waiter's result. Called by the leader with
  /// no locks held.
  void CommitBatch(const std::vector<Waiter*>& batch);

  /// First-committer-wins validation of `txn` against the retained history
  /// and `fresh` (earlier survivors of the wave being built). Requires the
  /// exclusive engine gate.
  Status Validate(const TxnSnapshot& txn,
                  const std::vector<CommitRecord>& fresh) const;
  Status CheckRecord(const TxnSnapshot& txn, const CommitRecord& rec) const;
  Status Conflict(RelationId rel, const CommitRecord& rec,
                  const char* kind) const;

  /// Drops history records no active snapshot can still conflict with and
  /// enforces kMaxHistory. Requires the exclusive engine gate and amu_.
  void PruneHistoryLocked();

  Database& db_;
  rules::RuleManager& rules_;

  std::shared_mutex engine_mu_;
  std::atomic<uint64_t> version_{0};

  /// Commit history, ascending by version; guarded by the exclusive
  /// engine gate (only the commit leader reads or writes it).
  std::deque<CommitRecord> history_;
  /// Records with version <= pruned_through_ were force-pruned (cap), so
  /// snapshots that old cannot be fully validated anymore.
  uint64_t pruned_through_ = 0;
  uint64_t batch_counter_ = 0;

  /// Active snapshots and their begin versions (pins history pruning).
  mutable std::mutex amu_;
  std::unordered_map<TxnSnapshot*, uint64_t> actives_;

  /// Commit queue; never held across the engine gate.
  mutable std::mutex qmu_;
  std::condition_variable qcv_;
  std::deque<Waiter*> queue_;
  bool leader_active_ = false;
  bool paused_ = false;
  size_t max_batch_ = kDefaultMaxBatch;
};

}  // namespace deltamon::txn

#endif  // DELTAMON_TXN_MANAGER_H_
