#include "amosql/lexer.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace deltamon::amosql {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kInterfaceVar:
      return "interface variable";
    case TokenKind::kInteger:
      return "integer";
    case TokenKind::kReal:
      return "real";
    case TokenKind::kString:
      return "string";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kArrow:
      return "'->'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "?";
}

bool Token::IsKeyword(const std::string& keyword) const {
  if (kind != TokenKind::kIdentifier) return false;
  if (text.size() != keyword.size()) return false;
  for (size_t i = 0; i < text.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(text[i])) != keyword[i]) {
      return false;
    }
  }
  return true;
}

Result<std::vector<Token>> Tokenize(const std::string& source) {
  std::vector<Token> tokens;
  int line = 1;
  size_t i = 0;
  const size_t n = source.size();

  auto push = [&tokens, &line](TokenKind kind, std::string text = "") {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '-' && i + 1 < n && source[i + 1] == '-') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      size_t start_line = line;
      i += 2;
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
        if (source[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= n) {
        return Status::ParseError("unterminated block comment starting at "
                                  "line " +
                                  std::to_string(start_line));
      }
      i += 2;
      continue;
    }
    // Identifiers and interface variables.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':') {
      bool interface_var = c == ':';
      size_t start = interface_var ? i + 1 : i;
      size_t j = start;
      while (j < n && (std::isalnum(static_cast<unsigned char>(source[j])) ||
                       source[j] == '_')) {
        ++j;
      }
      if (j == start) {
        return Status::ParseError("stray ':' at line " + std::to_string(line));
      }
      push(interface_var ? TokenKind::kInterfaceVar : TokenKind::kIdentifier,
           source.substr(start, j - start));
      i = j;
      continue;
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool is_real = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(source[j]))) {
        ++j;
      }
      if (j < n && source[j] == '.' && j + 1 < n &&
          std::isdigit(static_cast<unsigned char>(source[j + 1]))) {
        is_real = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(source[j]))) {
          ++j;
        }
      }
      std::string text = source.substr(i, j - i);
      Token t;
      t.line = line;
      t.text = text;
      if (is_real) {
        t.kind = TokenKind::kReal;
        t.real_value = std::stod(text);
      } else {
        t.kind = TokenKind::kInteger;
        errno = 0;
        t.int_value = std::strtoll(text.c_str(), nullptr, 10);
        if (errno == ERANGE) {
          return Status::ParseError("integer literal out of range at line " +
                                    std::to_string(line));
        }
      }
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    // Strings.
    if (c == '"' || c == '\'') {
      char quote = c;
      size_t j = i + 1;
      std::string value;
      while (j < n && source[j] != quote) {
        if (source[j] == '\n') ++line;
        value.push_back(source[j]);
        ++j;
      }
      if (j >= n) {
        return Status::ParseError("unterminated string at line " +
                                  std::to_string(line));
      }
      push(TokenKind::kString, std::move(value));
      i = j + 1;
      continue;
    }
    // Operators and punctuation.
    switch (c) {
      case '(':
        push(TokenKind::kLParen);
        ++i;
        break;
      case ')':
        push(TokenKind::kRParen);
        ++i;
        break;
      case ',':
        push(TokenKind::kComma);
        ++i;
        break;
      case ';':
        push(TokenKind::kSemicolon);
        ++i;
        break;
      case '+':
        push(TokenKind::kPlus);
        ++i;
        break;
      case '*':
        push(TokenKind::kStar);
        ++i;
        break;
      case '/':
        push(TokenKind::kSlash);
        ++i;
        break;
      case '-':
        if (i + 1 < n && source[i + 1] == '>') {
          push(TokenKind::kArrow);
          i += 2;
        } else {
          push(TokenKind::kMinus);
          ++i;
        }
        break;
      case '=':
        push(TokenKind::kEq);
        ++i;
        break;
      case '!':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokenKind::kNe);
          i += 2;
        } else {
          return Status::ParseError("stray '!' at line " +
                                    std::to_string(line));
        }
        break;
      case '<':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokenKind::kLe);
          i += 2;
        } else if (i + 1 < n && source[i + 1] == '>') {
          push(TokenKind::kNe);
          i += 2;
        } else {
          push(TokenKind::kLt);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokenKind::kGe);
          i += 2;
        } else {
          push(TokenKind::kGt);
          ++i;
        }
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at line " + std::to_string(line));
    }
  }
  push(TokenKind::kEnd);
  return tokens;
}

}  // namespace deltamon::amosql
