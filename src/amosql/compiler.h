#ifndef DELTAMON_AMOSQL_COMPILER_H_
#define DELTAMON_AMOSQL_COMPILER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "amosql/ast.h"
#include "rules/engine.h"

namespace deltamon::amosql {

/// Resolves a type name to a column type: "integer", "real", "charstring",
/// "boolean", or a user-defined object type registered in the catalog.
Result<ColumnType> ResolveTypeName(const Catalog& catalog,
                                   const std::string& name, int line);

/// Supplies per-object-type extent relations ("for each item i" needs the
/// set of item objects when nothing else binds i). The Session implements
/// this and creates extent relations lazily.
class ExtentProvider {
 public:
  virtual ~ExtentProvider() = default;
  virtual Result<RelationId> ExtentRelation(TypeId type) = 0;
};

/// Output of query compilation: one ObjectLog clause per DNF conjunct, plus
/// the variable layout needed to compile rule actions against the same
/// name space.
struct CompiledQuery {
  std::vector<objectlog::Clause> clauses;
  /// Leading head columns that are parameters.
  size_t num_params = 0;
  /// Variable ids of params and for-each variables: params first, then
  /// for-each, matching every clause (the layout is identical across
  /// conjuncts).
  std::vector<std::pair<std::string, int>> named_vars;
};

/// Compiles AMOSQL queries and expressions into ObjectLog. Borrows the
/// engine, the session environment (interface variables), and the extent
/// provider.
class Compiler {
 public:
  Compiler(Engine& engine, const std::unordered_map<std::string, Value>& env,
           ExtentProvider& extents)
      : engine_(engine), env_(env), extents_(extents) {}

  /// Compiles a query into clauses for `head_relation`.
  ///   head = [param vars] ++ [for-each vars if include_for_each_in_head]
  ///        ++ [result expressions].
  /// Object-typed params / for-each vars not bound by a positive literal
  /// get an extent literal; scalar ones are rejected as unsafe.
  Result<CompiledQuery> CompileQuery(RelationId head_relation,
                                     const std::vector<ParamDecl>& params,
                                     const std::vector<VarDecl>& for_each,
                                     bool include_for_each_in_head,
                                     const std::vector<ExprPtr>& results,
                                     const Predicate* where);

  /// Compiles a single expression over pre-declared variables into a clause
  ///   head(V) <- <bindings>
  /// whose head is the expression value; `prebound` variables are expected
  /// to be supplied at evaluation time via EvaluateClauseWithBindings.
  /// Used for rule action arguments and ground expressions.
  Result<objectlog::Clause> CompileScalarExprs(
      const std::vector<const Expr*>& exprs,
      const std::vector<std::pair<std::string, int>>& prebound,
      int num_prebound_vars);

 private:
  struct Scope;

  Result<objectlog::Term> CompileExpr(const Expr& expr, Scope& scope);
  Status CompileConjunct(
      const std::vector<std::pair<const Predicate*, bool>>& leaves,
      Scope& scope);

  Engine& engine_;
  const std::unordered_map<std::string, Value>& env_;
  ExtentProvider& extents_;
};

}  // namespace deltamon::amosql

#endif  // DELTAMON_AMOSQL_COMPILER_H_
