#include "amosql/compiler.h"

#include <algorithm>
#include <cctype>

namespace deltamon::amosql {

using objectlog::Clause;
using objectlog::CompareOp;
using objectlog::Literal;
using objectlog::Term;

Result<ColumnType> ResolveTypeName(const Catalog& catalog,
                                   const std::string& name, int line) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "integer" || lower == "int") {
    return ColumnType{ValueKind::kInt, kInvalidTypeId};
  }
  if (lower == "real" || lower == "double") {
    return ColumnType{ValueKind::kDouble, kInvalidTypeId};
  }
  if (lower == "charstring" || lower == "string") {
    return ColumnType{ValueKind::kString, kInvalidTypeId};
  }
  if (lower == "boolean" || lower == "bool") {
    return ColumnType{ValueKind::kBool, kInvalidTypeId};
  }
  auto type = catalog.FindType(name);
  if (!type.ok()) {
    return Status::TypeError("unknown type '" + name + "' at line " +
                             std::to_string(line));
  }
  return ColumnType{ValueKind::kObject, *type};
}

namespace {

CompareOp Complement(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kNe;
    case CompareOp::kNe:
      return CompareOp::kEq;
    case CompareOp::kLt:
      return CompareOp::kGe;
    case CompareOp::kLe:
      return CompareOp::kGt;
    case CompareOp::kGt:
      return CompareOp::kLe;
    case CompareOp::kGe:
      return CompareOp::kLt;
  }
  return op;
}

using Leaf = std::pair<const Predicate*, bool>;  // (leaf, negated)
using Conjunct = std::vector<Leaf>;

/// Rewrites a predicate tree to disjunctive normal form with negation
/// pushed to the leaves (De Morgan). Each conjunct becomes one ObjectLog
/// clause (the paper's ObjectLog keeps disjunction in bodies; DNF clauses
/// are the equivalent form the differencer consumes).
std::vector<Conjunct> ToDnf(const Predicate* p, bool negated) {
  switch (p->kind) {
    case Predicate::Kind::kNot:
      return ToDnf(p->child.get(), !negated);
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr: {
      bool is_and = (p->kind == Predicate::Kind::kAnd) != negated;
      std::vector<Conjunct> left = ToDnf(p->left.get(), negated);
      std::vector<Conjunct> right = ToDnf(p->right.get(), negated);
      if (!is_and) {
        // Disjunction: concatenate the conjunct lists.
        for (Conjunct& c : right) left.push_back(std::move(c));
        return left;
      }
      // Conjunction: cross product.
      std::vector<Conjunct> out;
      out.reserve(left.size() * right.size());
      for (const Conjunct& l : left) {
        for (const Conjunct& r : right) {
          Conjunct merged = l;
          merged.insert(merged.end(), r.begin(), r.end());
          out.push_back(std::move(merged));
        }
      }
      return out;
    }
    case Predicate::Kind::kCompare:
    case Predicate::Kind::kAtom:
      return {{{p, negated}}};
  }
  return {};
}

}  // namespace

struct Compiler::Scope {
  Clause clause;
  std::unordered_map<std::string, int> vars;
  int NewTemp(const std::string& hint) { return clause.NewVar(hint); }
};

Result<Term> Compiler::CompileExpr(const Expr& expr, Scope& scope) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return Term::Const(expr.literal);
    case Expr::Kind::kInterfaceVar: {
      auto it = env_.find(expr.name);
      if (it == env_.end()) {
        return Status::NotFound("undefined interface variable :" + expr.name +
                                " at line " + std::to_string(expr.line));
      }
      return Term::Const(it->second);
    }
    case Expr::Kind::kVariable: {
      auto it = scope.vars.find(expr.name);
      if (it == scope.vars.end()) {
        return Status::InvalidArgument("undeclared variable '" + expr.name +
                                       "' at line " +
                                       std::to_string(expr.line));
      }
      return Term::Var(it->second);
    }
    case Expr::Kind::kArith: {
      DELTAMON_ASSIGN_OR_RETURN(Term lhs, CompileExpr(*expr.lhs, scope));
      DELTAMON_ASSIGN_OR_RETURN(Term rhs, CompileExpr(*expr.rhs, scope));
      int out = scope.NewTemp("_G" + std::to_string(scope.clause.num_vars));
      scope.clause.body.push_back(
          Literal::Arith(expr.op, Term::Var(out), lhs, rhs));
      return Term::Var(out);
    }
    case Expr::Kind::kCall: {
      auto rel = engine_.db.catalog().FindRelation(expr.name);
      if (!rel.ok()) {
        return Status::NotFound("unknown function '" + expr.name +
                                "' at line " + std::to_string(expr.line));
      }
      const FunctionSignature* sig = engine_.db.catalog().GetSignature(*rel);
      if (sig == nullptr) {
        return Status::Internal("missing signature for " + expr.name);
      }
      if (expr.args.size() != sig->argument_types.size()) {
        return Status::InvalidArgument(
            "function '" + expr.name + "' expects " +
            std::to_string(sig->argument_types.size()) + " arguments, got " +
            std::to_string(expr.args.size()) + " at line " +
            std::to_string(expr.line));
      }
      if (sig->result_types.size() != 1) {
        return Status::InvalidArgument(
            "function '" + expr.name + "' cannot be used as a value (it has " +
            std::to_string(sig->result_types.size()) + " results) at line " +
            std::to_string(expr.line));
      }
      std::vector<Term> args;
      for (const ExprPtr& a : expr.args) {
        DELTAMON_ASSIGN_OR_RETURN(Term t, CompileExpr(*a, scope));
        args.push_back(std::move(t));
      }
      int out = scope.NewTemp("_G" + std::to_string(scope.clause.num_vars));
      args.push_back(Term::Var(out));
      scope.clause.body.push_back(Literal::Relation(*rel, std::move(args)));
      return Term::Var(out);
    }
  }
  return Status::Internal("unknown expression kind");
}

Status Compiler::CompileConjunct(const std::vector<Leaf>& leaves,
                                 Scope& scope) {
  for (const auto& [leaf, negated] : leaves) {
    if (leaf->kind == Predicate::Kind::kCompare) {
      DELTAMON_ASSIGN_OR_RETURN(Term lhs, CompileExpr(*leaf->lhs, scope));
      DELTAMON_ASSIGN_OR_RETURN(Term rhs, CompileExpr(*leaf->rhs, scope));
      CompareOp op = negated ? Complement(leaf->cmp) : leaf->cmp;
      scope.clause.body.push_back(Literal::Compare(op, lhs, rhs));
      continue;
    }
    // Atom: a (possibly negated) function-call predicate.
    const Expr& call = *leaf->atom;
    auto rel = engine_.db.catalog().FindRelation(call.name);
    if (!rel.ok()) {
      return Status::NotFound("unknown function '" + call.name +
                              "' at line " + std::to_string(call.line));
    }
    const FunctionSignature* sig = engine_.db.catalog().GetSignature(*rel);
    if (call.args.size() != sig->argument_types.size()) {
      return Status::InvalidArgument(
          "function '" + call.name + "' expects " +
          std::to_string(sig->argument_types.size()) + " arguments at line " +
          std::to_string(call.line));
    }
    std::vector<Term> args;
    for (const ExprPtr& a : call.args) {
      DELTAMON_ASSIGN_OR_RETURN(Term t, CompileExpr(*a, scope));
      args.push_back(std::move(t));
    }
    // A boolean-valued atom tests `= true`; other result columns are
    // existential (wildcards under negation): a non-empty result is true.
    for (const ColumnType& rt : sig->result_types) {
      if (sig->result_types.size() == 1 && rt.kind == ValueKind::kBool) {
        args.push_back(Term::Const(Value(true)));
      } else {
        args.push_back(Term::Var(
            scope.NewTemp("_G" + std::to_string(scope.clause.num_vars))));
      }
    }
    scope.clause.body.push_back(
        Literal::Relation(*rel, std::move(args), negated));
  }
  return Status::OK();
}

Result<CompiledQuery> Compiler::CompileQuery(
    RelationId head_relation, const std::vector<ParamDecl>& params,
    const std::vector<VarDecl>& for_each, bool include_for_each_in_head,
    const std::vector<ExprPtr>& results, const Predicate* where) {
  // Build the DNF; an absent predicate is the single empty conjunct.
  std::vector<Conjunct> conjuncts =
      where != nullptr ? ToDnf(where, false) : std::vector<Conjunct>{{}};

  CompiledQuery out;
  out.num_params = params.size();

  for (const Conjunct& conjunct : conjuncts) {
    Scope scope;
    scope.clause.head_relation = head_relation;
    // Fixed variable layout: params, then for-each variables.
    std::vector<std::pair<int, ColumnType>> named_types;
    for (const ParamDecl& p : params) {
      if (p.var_name.empty()) {
        return Status::InvalidArgument("parameter of type '" + p.type_name +
                                       "' needs a variable name at line " +
                                       std::to_string(p.line));
      }
      DELTAMON_ASSIGN_OR_RETURN(
          ColumnType type,
          ResolveTypeName(engine_.db.catalog(), p.type_name, p.line));
      int id = scope.clause.NewVar(p.var_name);
      scope.vars[p.var_name] = id;
      named_types.emplace_back(id, type);
    }
    for (const VarDecl& d : for_each) {
      DELTAMON_ASSIGN_OR_RETURN(
          ColumnType type,
          ResolveTypeName(engine_.db.catalog(), d.type_name, d.line));
      if (scope.vars.contains(d.var_name)) {
        return Status::InvalidArgument("duplicate variable '" + d.var_name +
                                       "' at line " + std::to_string(d.line));
      }
      int id = scope.clause.NewVar(d.var_name);
      scope.vars[d.var_name] = id;
      named_types.emplace_back(id, type);
    }
    if (out.named_vars.empty()) {
      // Record layout in declaration order.
      for (const ParamDecl& p : params) {
        out.named_vars.emplace_back(p.var_name, scope.vars.at(p.var_name));
      }
      for (const VarDecl& d : for_each) {
        out.named_vars.emplace_back(d.var_name, scope.vars.at(d.var_name));
      }
    }

    DELTAMON_RETURN_IF_ERROR(CompileConjunct(conjunct, scope));

    // Head: params ++ (for-each) ++ result expressions.
    for (const ParamDecl& p : params) {
      scope.clause.head_args.push_back(Term::Var(scope.vars.at(p.var_name)));
    }
    if (include_for_each_in_head) {
      for (const VarDecl& d : for_each) {
        scope.clause.head_args.push_back(
            Term::Var(scope.vars.at(d.var_name)));
      }
    }
    for (const ExprPtr& e : results) {
      DELTAMON_ASSIGN_OR_RETURN(Term t, CompileExpr(*e, scope));
      scope.clause.head_args.push_back(std::move(t));
    }

    // Range restriction for declared variables: a variable not bound by any
    // positive literal ranges over its type extent (object types) or is an
    // error (scalars).
    std::vector<bool> bound(scope.clause.num_vars, false);
    for (const Literal& l : scope.clause.body) {
      if (l.kind == Literal::Kind::kRelation && !l.negated) {
        for (const Term& t : l.args) {
          if (t.is_var()) bound[t.var] = true;
        }
      }
    }
    for (const auto& [id, type] : named_types) {
      if (bound[id]) continue;
      if (type.kind != ValueKind::kObject) {
        return Status::InvalidArgument(
            "variable '" + scope.clause.var_names[id] +
            "' of a scalar type is not bound by any positive predicate");
      }
      DELTAMON_ASSIGN_OR_RETURN(RelationId extent,
                                extents_.ExtentRelation(type.object_type));
      scope.clause.body.insert(
          scope.clause.body.begin(),
          Literal::Relation(extent, {Term::Var(id)}));
    }
    out.clauses.push_back(std::move(scope.clause));
  }
  return out;
}

Result<Clause> Compiler::CompileScalarExprs(
    const std::vector<const Expr*>& exprs,
    const std::vector<std::pair<std::string, int>>& prebound,
    int num_prebound_vars) {
  Scope scope;
  scope.clause.num_vars = num_prebound_vars;
  scope.clause.var_names.resize(num_prebound_vars);
  for (const auto& [name, id] : prebound) {
    scope.vars[name] = id;
    if (id >= 0 && id < num_prebound_vars) scope.clause.var_names[id] = name;
  }
  for (const Expr* e : exprs) {
    DELTAMON_ASSIGN_OR_RETURN(Term t, CompileExpr(*e, scope));
    scope.clause.head_args.push_back(std::move(t));
  }
  return scope.clause;
}

}  // namespace deltamon::amosql
