#ifndef DELTAMON_AMOSQL_LEXER_H_
#define DELTAMON_AMOSQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace deltamon::amosql {

enum class TokenKind {
  kIdentifier,     // item, quantity, monitor_items
  kInterfaceVar,   // :item1 (session-scope variable, not stored)
  kInteger,        // 5000
  kReal,           // 2.5
  kString,         // "abc" or 'abc'
  kLParen,         // (
  kRParen,         // )
  kComma,          // ,
  kSemicolon,      // ;
  kArrow,          // ->
  kEq,             // =
  kNe,             // != or <>
  kLt,             // <
  kLe,             // <=
  kGt,             // >
  kGe,             // >=
  kPlus,           // +
  kMinus,          // -
  kStar,           // *
  kSlash,          // /
  kEnd,            // end of input
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  /// Identifier/interface-var name (lowercased for keywords matching) or
  /// string payload.
  std::string text;
  int64_t int_value = 0;
  double real_value = 0.0;
  /// 1-based source line, for error messages.
  int line = 1;

  /// Case-insensitive keyword test against an identifier token.
  bool IsKeyword(const std::string& keyword) const;
};

/// Tokenizes AMOSQL source. Supports `--` line comments and `/* */` block
/// comments. Identifiers are case-preserved; keyword matching is
/// case-insensitive.
Result<std::vector<Token>> Tokenize(const std::string& source);

}  // namespace deltamon::amosql

#endif  // DELTAMON_AMOSQL_LEXER_H_
