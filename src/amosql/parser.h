#ifndef DELTAMON_AMOSQL_PARSER_H_
#define DELTAMON_AMOSQL_PARSER_H_

#include <vector>

#include "amosql/ast.h"
#include "amosql/lexer.h"

namespace deltamon::amosql {

/// Parses a sequence of AMOSQL statements (the §3.1 subset plus a few
/// conveniences):
///
///   create type <name>;
///   create function <name>(<type> [<var>], ...) -> <type>[, <type>...]
///       [as select <exprs> [for each <type> <var>, ... [where <pred>]]];
///   create rule <name>(<type> <var>, ...) [nervous] as
///       when [for each <type> <var>, ... where] <pred>
///       do <proc>(<exprs>) | set <fn>(<exprs>) = <expr>;
///   create <type> instances :<name>, ...;
///   set|add|remove <fn>(<exprs>) = <expr>;
///   select <exprs> [for each <type> <var>, ... [where <pred>]];
///   activate|deactivate <rule>([<exprs>]);
///   commit; rollback;
///   profile <statement>; show metrics;
///
/// `--` and `/* */` comments are supported; keywords are case-insensitive.
Result<std::vector<Statement>> Parse(const std::string& source);

/// Parses an already tokenized stream (for tests).
Result<std::vector<Statement>> ParseTokens(std::vector<Token> tokens);

}  // namespace deltamon::amosql

#endif  // DELTAMON_AMOSQL_PARSER_H_
