#include "amosql/parser.h"

#include <cctype>

namespace deltamon::amosql {

namespace {

/// Recursive-descent parser with token-position backtracking (used only to
/// disambiguate parenthesized predicates from parenthesized expressions).
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::vector<Statement>> ParseProgram() {
    std::vector<Statement> out;
    while (!At(TokenKind::kEnd)) {
      DELTAMON_ASSIGN_OR_RETURN(Statement stmt, ParseStatement());
      out.push_back(std::move(stmt));
    }
    return out;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool At(TokenKind kind) const { return Peek().kind == kind; }
  bool AtKeyword(const char* kw) const { return Peek().IsKeyword(kw); }
  Token Take() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool Match(TokenKind kind) {
    if (!At(kind)) return false;
    Take();
    return true;
  }
  bool MatchKeyword(const char* kw) {
    if (!AtKeyword(kw)) return false;
    Take();
    return true;
  }

  Status ErrorHere(const std::string& what) const {
    return Status::ParseError(what + " at line " +
                              std::to_string(Peek().line) + " (near " +
                              TokenKindName(Peek().kind) +
                              (Peek().text.empty() ? "" : " '" + Peek().text +
                                                             "'") +
                              ")");
  }

  Status Expect(TokenKind kind, const char* what) {
    if (!Match(kind)) return ErrorHere(std::string("expected ") + what);
    return Status::OK();
  }

  Status ExpectKeyword(const char* kw) {
    if (!MatchKeyword(kw)) {
      return ErrorHere(std::string("expected '") + kw + "'");
    }
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier(const char* what) {
    if (!At(TokenKind::kIdentifier)) {
      return ErrorHere(std::string("expected ") + what);
    }
    return Take().text;
  }

  // --- Statements ---------------------------------------------------------

  Result<Statement> ParseStatement() {
    Statement stmt;
    stmt.line = Peek().line;
    if (AtKeyword("create")) {
      Take();
      if (AtKeyword("type")) {
        Take();
        DELTAMON_ASSIGN_OR_RETURN(std::string name,
                                  ExpectIdentifier("type name"));
        DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'"));
        stmt.node = CreateTypeStmt{std::move(name)};
        return stmt;
      }
      if (AtKeyword("function")) {
        Take();
        DELTAMON_ASSIGN_OR_RETURN(CreateFunctionStmt fn,
                                  ParseCreateFunction());
        stmt.node = std::move(fn);
        return stmt;
      }
      if (AtKeyword("rule")) {
        Take();
        DELTAMON_ASSIGN_OR_RETURN(CreateRuleStmt rule, ParseCreateRule());
        stmt.node = std::move(rule);
        return stmt;
      }
      // create <type> instances :a, :b;
      DELTAMON_ASSIGN_OR_RETURN(std::string type_name,
                                ExpectIdentifier("type name"));
      DELTAMON_RETURN_IF_ERROR(ExpectKeyword("instances"));
      CreateInstancesStmt ci;
      ci.type_name = std::move(type_name);
      do {
        if (!At(TokenKind::kInterfaceVar)) {
          return ErrorHere("expected interface variable (:name)");
        }
        ci.interface_vars.push_back(Take().text);
      } while (Match(TokenKind::kComma));
      DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'"));
      stmt.node = std::move(ci);
      return stmt;
    }
    // `set threads N;` — session knob, not an update (there is no function
    // call after `set`, so the generic update parse would reject it).
    if (AtKeyword("set") && Peek(1).IsKeyword("threads") &&
        Peek(2).kind == TokenKind::kInteger) {
      Take();  // set
      Take();  // threads
      SetThreadsStmt st;
      st.num_threads = Take().int_value;
      if (st.num_threads < 0) {
        return Status::ParseError("thread count must be >= 0, at line " +
                                  std::to_string(stmt.line));
      }
      DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'"));
      stmt.node = st;
      return stmt;
    }
    // `set slow_ms N;` — slow-statement log threshold, same shape as
    // threads (the integer guard keeps `set slow_ms(:x) = ...` an update).
    if (AtKeyword("set") && Peek(1).IsKeyword("slow_ms") &&
        Peek(2).kind == TokenKind::kInteger) {
      Take();  // set
      Take();  // slow_ms
      SetSlowMsStmt ss;
      ss.slow_ms = Take().int_value;
      if (ss.slow_ms < 0) {
        return Status::ParseError("slow_ms must be >= 0, at line " +
                                  std::to_string(stmt.line));
      }
      DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'"));
      stmt.node = ss;
      return stmt;
    }
    // `set provenance on|off;` / `set wave_capture on|off;` — the
    // observability toggles, same shape as kernels.
    if (AtKeyword("set") &&
        (Peek(1).IsKeyword("provenance") || Peek(1).IsKeyword("wave_capture")) &&
        (Peek(2).IsKeyword("on") || Peek(2).IsKeyword("off"))) {
      Take();  // set
      const bool provenance = Take().IsKeyword("provenance");
      const bool on = Take().IsKeyword("on");
      DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'"));
      if (provenance) {
        stmt.node = SetProvenanceStmt{on};
      } else {
        stmt.node = SetWaveCaptureStmt{on};
      }
      return stmt;
    }
    if (AtKeyword("set") &&
        (Peek(1).IsKeyword("provenance") ||
         Peek(1).IsKeyword("wave_capture")) &&
        Peek(2).kind != TokenKind::kLParen) {
      return ErrorHere("expected 'on' or 'off' after 'set " +
                       Peek(1).text + "'");
    }
    // `set kernels on|off;` — batch-kernel toggle, same shape as threads.
    // The Peek(2) guard keeps `set kernels(:a) = ...` an ordinary update
    // of a function that happens to be named "kernels".
    if (AtKeyword("set") && Peek(1).IsKeyword("kernels") &&
        (Peek(2).IsKeyword("on") || Peek(2).IsKeyword("off"))) {
      Take();  // set
      Take();  // kernels
      SetKernelsStmt sk;
      sk.on = Take().IsKeyword("on");
      DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'"));
      stmt.node = sk;
      return stmt;
    }
    if (AtKeyword("set") && Peek(1).IsKeyword("kernels") &&
        Peek(2).kind != TokenKind::kLParen) {
      return ErrorHere("expected 'on' or 'off' after 'set kernels'");
    }
    if (AtKeyword("set") || AtKeyword("add") || AtKeyword("remove")) {
      UpdateStmt upd;
      upd.line = Peek().line;
      std::string kw = Take().text;
      upd.kind = (kw[0] == 's' || kw[0] == 'S') ? UpdateStmt::Kind::kSet
                 : (kw[0] == 'a' || kw[0] == 'A') ? UpdateStmt::Kind::kAdd
                                                  : UpdateStmt::Kind::kRemove;
      DELTAMON_ASSIGN_OR_RETURN(upd.target, ParseExpr());
      if (upd.target->kind != Expr::Kind::kCall) {
        return Status::ParseError(
            "update target must be a function call, at line " +
            std::to_string(upd.line));
      }
      DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kEq, "'='"));
      DELTAMON_ASSIGN_OR_RETURN(upd.value, ParseExpr());
      DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'"));
      stmt.node = std::move(upd);
      return stmt;
    }
    if (AtKeyword("select")) {
      Take();
      DELTAMON_ASSIGN_OR_RETURN(SelectQuery query, ParseSelectBody());
      DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'"));
      stmt.node = SelectStmt{std::move(query)};
      return stmt;
    }
    if (AtKeyword("activate") || AtKeyword("deactivate")) {
      ActivateStmt act;
      act.deactivate = AtKeyword("deactivate");
      Take();
      DELTAMON_ASSIGN_OR_RETURN(act.rule_name,
                                ExpectIdentifier("rule name"));
      DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
      if (!At(TokenKind::kRParen)) {
        do {
          DELTAMON_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          act.args.push_back(std::move(arg));
        } while (Match(TokenKind::kComma));
      }
      DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'"));
      stmt.node = std::move(act);
      return stmt;
    }
    if (MatchKeyword("begin")) {
      DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'"));
      stmt.node = BeginStmt{};
      return stmt;
    }
    if (MatchKeyword("commit")) {
      DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'"));
      stmt.node = CommitStmt{};
      return stmt;
    }
    if (MatchKeyword("rollback") || MatchKeyword("abort")) {
      DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'"));
      stmt.node = RollbackStmt{};
      return stmt;
    }
    if (AtKeyword("profile")) {
      Take();
      // The wrapped statement parses (and terminates) as usual, so any
      // statement form can be profiled, including another profile.
      DELTAMON_ASSIGN_OR_RETURN(Statement inner, ParseStatement());
      ProfileStmt profile;
      profile.inner = std::make_unique<Statement>(std::move(inner));
      stmt.node = std::move(profile);
      return stmt;
    }
    if (AtKeyword("trace")) {
      Take();
      TraceStmt trace;
      // Optional output path as a string literal before the statement.
      if (At(TokenKind::kString)) trace.path = Take().text;
      DELTAMON_ASSIGN_OR_RETURN(Statement inner, ParseStatement());
      trace.inner = std::make_unique<Statement>(std::move(inner));
      stmt.node = std::move(trace);
      return stmt;
    }
    if (AtKeyword("dump")) {
      Take();
      DELTAMON_RETURN_IF_ERROR(ExpectKeyword("waves"));
      DumpWavesStmt dump;
      if (!At(TokenKind::kString)) {
        return ErrorHere("expected output path string after 'dump waves'");
      }
      dump.path = Take().text;
      DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'"));
      stmt.node = std::move(dump);
      return stmt;
    }
    if (AtKeyword("explain") && Peek(1).IsKeyword("firing")) {
      Take();  // explain
      Take();  // firing
      ExplainFiringStmt ef;
      // Optional JSON artifact path before the rule (mirrors `trace`).
      if (At(TokenKind::kString)) ef.path = Take().text;
      DELTAMON_ASSIGN_OR_RETURN(ef.rule, ExpectIdentifier("rule name"));
      if (At(TokenKind::kInteger)) {
        ef.nth = Take().int_value;
        if (ef.nth < 1) {
          return Status::ParseError(
              "firing index must be >= 1, at line " +
              std::to_string(stmt.line));
        }
      }
      DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'"));
      stmt.node = std::move(ef);
      return stmt;
    }
    if (AtKeyword("explain")) {
      Take();
      DELTAMON_RETURN_IF_ERROR(ExpectKeyword("analyze"));
      ExplainAnalyzeStmt ea;
      // Optional JSON artifact path as a string literal before the
      // statement (mirrors `trace`).
      if (At(TokenKind::kString)) ea.path = Take().text;
      DELTAMON_ASSIGN_OR_RETURN(Statement inner, ParseStatement());
      ea.inner = std::make_unique<Statement>(std::move(inner));
      stmt.node = std::move(ea);
      return stmt;
    }
    if (AtKeyword("analyze")) {
      Take();
      DELTAMON_RETURN_IF_ERROR(ExpectKeyword("rule"));
      AnalyzeRuleStmt an;
      DELTAMON_ASSIGN_OR_RETURN(an.rule, ExpectIdentifier("rule name"));
      DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'"));
      stmt.node = std::move(an);
      return stmt;
    }
    if (AtKeyword("show")) {
      Take();
      if (MatchKeyword("network")) {
        ShowNetworkStmt show;
        if (At(TokenKind::kIdentifier)) show.rule = Take().text;
        DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'"));
        stmt.node = std::move(show);
        return stmt;
      }
      if (MatchKeyword("slow")) {
        DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'"));
        stmt.node = ShowSlowStmt{};
        return stmt;
      }
      if (MatchKeyword("settings")) {
        DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'"));
        stmt.node = ShowSettingsStmt{};
        return stmt;
      }
      if (MatchKeyword("provenance")) {
        DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'"));
        stmt.node = ShowProvenanceStmt{};
        return stmt;
      }
      DELTAMON_RETURN_IF_ERROR(ExpectKeyword("metrics"));
      ShowMetricsStmt sm;
      if (MatchKeyword("prometheus")) sm.prometheus = true;
      DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'"));
      stmt.node = sm;
      return stmt;
    }
    if (AtKeyword("reset")) {
      Take();
      DELTAMON_RETURN_IF_ERROR(ExpectKeyword("metrics"));
      DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'"));
      stmt.node = ResetMetricsStmt{};
      return stmt;
    }
    return ErrorHere("expected a statement");
  }

  Result<std::vector<ParamDecl>> ParseParamList() {
    std::vector<ParamDecl> params;
    DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    if (!At(TokenKind::kRParen)) {
      do {
        ParamDecl p;
        p.line = Peek().line;
        DELTAMON_ASSIGN_OR_RETURN(p.type_name,
                                  ExpectIdentifier("parameter type"));
        if (At(TokenKind::kIdentifier)) p.var_name = Take().text;
        params.push_back(std::move(p));
      } while (Match(TokenKind::kComma));
    }
    DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    return params;
  }

  Result<CreateFunctionStmt> ParseCreateFunction() {
    CreateFunctionStmt fn;
    DELTAMON_ASSIGN_OR_RETURN(fn.name, ExpectIdentifier("function name"));
    DELTAMON_ASSIGN_OR_RETURN(fn.params, ParseParamList());
    DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kArrow, "'->'"));
    if (Match(TokenKind::kLParen)) {
      do {
        DELTAMON_ASSIGN_OR_RETURN(std::string type,
                                  ExpectIdentifier("result type"));
        if (At(TokenKind::kIdentifier)) Take();  // optional result name
        fn.result_types.push_back(std::move(type));
      } while (Match(TokenKind::kComma));
      DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    } else {
      DELTAMON_ASSIGN_OR_RETURN(std::string type,
                                ExpectIdentifier("result type"));
      // Optional result name — but never the 'as' introducing a body.
      if (At(TokenKind::kIdentifier) && !AtKeyword("as")) Take();
      fn.result_types.push_back(std::move(type));
    }
    if (MatchKeyword("as")) {
      if (AtKeyword("count") || AtKeyword("sum") || AtKeyword("min") ||
          AtKeyword("max")) {
        AggregateBody agg;
        agg.line = Peek().line;
        agg.func = Take().text;
        for (char& ch : agg.func) {
          ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
        }
        DELTAMON_ASSIGN_OR_RETURN(agg.source,
                                  ExpectIdentifier("aggregated function"));
        DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
        if (!At(TokenKind::kRParen)) {
          do {
            DELTAMON_ASSIGN_OR_RETURN(std::string arg,
                                      ExpectIdentifier("group variable"));
            agg.args.push_back(std::move(arg));
          } while (Match(TokenKind::kComma));
        }
        DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
        fn.aggregate = std::move(agg);
      } else {
        DELTAMON_RETURN_IF_ERROR(ExpectKeyword("select"));
        DELTAMON_ASSIGN_OR_RETURN(SelectQuery body, ParseSelectBody());
        fn.body = std::move(body);
      }
    }
    DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'"));
    return fn;
  }

  Result<std::vector<VarDecl>> ParseForEachDecls() {
    std::vector<VarDecl> decls;
    do {
      VarDecl d;
      d.line = Peek().line;
      DELTAMON_ASSIGN_OR_RETURN(d.type_name,
                                ExpectIdentifier("variable type"));
      DELTAMON_ASSIGN_OR_RETURN(d.var_name,
                                ExpectIdentifier("variable name"));
      decls.push_back(std::move(d));
    } while (Match(TokenKind::kComma));
    return decls;
  }

  Result<SelectQuery> ParseSelectBody() {
    SelectQuery q;
    q.line = Peek().line;
    do {
      DELTAMON_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      q.results.push_back(std::move(e));
    } while (Match(TokenKind::kComma));
    if (MatchKeyword("for")) {
      DELTAMON_RETURN_IF_ERROR(ExpectKeyword("each"));
      DELTAMON_ASSIGN_OR_RETURN(q.for_each, ParseForEachDecls());
      if (MatchKeyword("where")) {
        DELTAMON_ASSIGN_OR_RETURN(q.where, ParsePredicate());
      }
    }
    return q;
  }

  Result<CreateRuleStmt> ParseCreateRule() {
    CreateRuleStmt rule;
    DELTAMON_ASSIGN_OR_RETURN(rule.name, ExpectIdentifier("rule name"));
    DELTAMON_ASSIGN_OR_RETURN(rule.params, ParseParamList());
    if (MatchKeyword("nervous")) {
      rule.nervous = true;
    } else {
      MatchKeyword("strict");  // optional, the default
    }
    DELTAMON_RETURN_IF_ERROR(ExpectKeyword("as"));
    DELTAMON_RETURN_IF_ERROR(ExpectKeyword("when"));
    if (MatchKeyword("for")) {
      DELTAMON_RETURN_IF_ERROR(ExpectKeyword("each"));
      DELTAMON_ASSIGN_OR_RETURN(rule.for_each, ParseForEachDecls());
      DELTAMON_RETURN_IF_ERROR(ExpectKeyword("where"));
    }
    DELTAMON_ASSIGN_OR_RETURN(rule.condition, ParsePredicate());
    DELTAMON_RETURN_IF_ERROR(ExpectKeyword("do"));
    DELTAMON_ASSIGN_OR_RETURN(rule.action, ParseRuleAction());
    DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'"));
    return rule;
  }

  Result<RuleActionStmt> ParseRuleAction() {
    RuleActionStmt action;
    action.line = Peek().line;
    if (MatchKeyword("set")) {
      action.kind = RuleActionStmt::Kind::kSet;
      DELTAMON_ASSIGN_OR_RETURN(action.set_target, ParseExpr());
      if (action.set_target->kind != Expr::Kind::kCall) {
        return Status::ParseError("set action target must be a function "
                                  "call, at line " +
                                  std::to_string(action.line));
      }
      DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kEq, "'='"));
      DELTAMON_ASSIGN_OR_RETURN(action.set_value, ParseExpr());
      return action;
    }
    action.kind = RuleActionStmt::Kind::kProcedureCall;
    DELTAMON_ASSIGN_OR_RETURN(action.call, ParseExpr());
    if (action.call->kind != Expr::Kind::kCall) {
      return Status::ParseError("rule action must be a procedure call or a "
                                "set statement, at line " +
                                std::to_string(action.line));
    }
    return action;
  }

  // --- Predicates -----------------------------------------------------------

  Result<PredicatePtr> ParsePredicate() { return ParseOr(); }

  Result<PredicatePtr> ParseOr() {
    DELTAMON_ASSIGN_OR_RETURN(PredicatePtr left, ParseAnd());
    while (AtKeyword("or")) {
      int line = Take().line;
      DELTAMON_ASSIGN_OR_RETURN(PredicatePtr right, ParseAnd());
      left = Predicate::Or(std::move(left), std::move(right), line);
    }
    return left;
  }

  Result<PredicatePtr> ParseAnd() {
    DELTAMON_ASSIGN_OR_RETURN(PredicatePtr left, ParseUnary());
    while (AtKeyword("and")) {
      int line = Take().line;
      DELTAMON_ASSIGN_OR_RETURN(PredicatePtr right, ParseUnary());
      left = Predicate::And(std::move(left), std::move(right), line);
    }
    return left;
  }

  Result<PredicatePtr> ParseUnary() {
    if (AtKeyword("not")) {
      int line = Take().line;
      DELTAMON_ASSIGN_OR_RETURN(PredicatePtr child, ParseUnary());
      return Predicate::Not(std::move(child), line);
    }
    // Try a comparison/atom; if that fails at an opening parenthesis, retry
    // as a parenthesized predicate.
    size_t saved = pos_;
    Result<PredicatePtr> attempt = ParseComparisonOrAtom();
    if (attempt.ok()) return std::move(attempt).value();
    if (tokens_[saved].kind == TokenKind::kLParen) {
      pos_ = saved;
      DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
      DELTAMON_ASSIGN_OR_RETURN(PredicatePtr inner, ParsePredicate());
      DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      return inner;
    }
    return attempt.status();
  }

  Result<PredicatePtr> ParseComparisonOrAtom() {
    int line = Peek().line;
    DELTAMON_ASSIGN_OR_RETURN(ExprPtr lhs, ParseExpr());
    objectlog::CompareOp op;
    switch (Peek().kind) {
      case TokenKind::kEq:
        op = objectlog::CompareOp::kEq;
        break;
      case TokenKind::kNe:
        op = objectlog::CompareOp::kNe;
        break;
      case TokenKind::kLt:
        op = objectlog::CompareOp::kLt;
        break;
      case TokenKind::kLe:
        op = objectlog::CompareOp::kLe;
        break;
      case TokenKind::kGt:
        op = objectlog::CompareOp::kGt;
        break;
      case TokenKind::kGe:
        op = objectlog::CompareOp::kGe;
        break;
      default:
        if (lhs->kind == Expr::Kind::kCall) {
          return Predicate::Atom(std::move(lhs), line);
        }
        return ErrorHere("expected a comparison operator");
    }
    Take();
    DELTAMON_ASSIGN_OR_RETURN(ExprPtr rhs, ParseExpr());
    return Predicate::Compare(op, std::move(lhs), std::move(rhs), line);
  }

  // --- Expressions ------------------------------------------------------------

  Result<ExprPtr> ParseExpr() { return ParseAdditive(); }

  Result<ExprPtr> ParseAdditive() {
    DELTAMON_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (At(TokenKind::kPlus) || At(TokenKind::kMinus)) {
      Token op = Take();
      DELTAMON_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = Expr::Arith(op.kind == TokenKind::kPlus
                             ? objectlog::ArithOp::kAdd
                             : objectlog::ArithOp::kSub,
                         std::move(left), std::move(right), op.line);
    }
    return left;
  }

  Result<ExprPtr> ParseMultiplicative() {
    DELTAMON_ASSIGN_OR_RETURN(ExprPtr left, ParsePrimary());
    while (At(TokenKind::kStar) || At(TokenKind::kSlash)) {
      Token op = Take();
      DELTAMON_ASSIGN_OR_RETURN(ExprPtr right, ParsePrimary());
      left = Expr::Arith(op.kind == TokenKind::kStar
                             ? objectlog::ArithOp::kMul
                             : objectlog::ArithOp::kDiv,
                         std::move(left), std::move(right), op.line);
    }
    return left;
  }

  Result<ExprPtr> ParsePrimary() {
    int line = Peek().line;
    switch (Peek().kind) {
      case TokenKind::kInteger: {
        Token t = Take();
        return Expr::Literal(Value(t.int_value), line);
      }
      case TokenKind::kReal: {
        Token t = Take();
        return Expr::Literal(Value(t.real_value), line);
      }
      case TokenKind::kString: {
        Token t = Take();
        return Expr::Literal(Value(std::move(t.text)), line);
      }
      case TokenKind::kInterfaceVar: {
        Token t = Take();
        return Expr::Interface(std::move(t.text), line);
      }
      case TokenKind::kMinus: {
        Take();
        DELTAMON_ASSIGN_OR_RETURN(ExprPtr inner, ParsePrimary());
        return Expr::Arith(objectlog::ArithOp::kSub,
                           Expr::Literal(Value(0), line), std::move(inner),
                           line);
      }
      case TokenKind::kLParen: {
        Take();
        DELTAMON_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
        return inner;
      }
      case TokenKind::kIdentifier: {
        // Boolean literals.
        if (AtKeyword("true")) {
          Take();
          return Expr::Literal(Value(true), line);
        }
        if (AtKeyword("false")) {
          Take();
          return Expr::Literal(Value(false), line);
        }
        Token t = Take();
        if (Match(TokenKind::kLParen)) {
          std::vector<ExprPtr> args;
          if (!At(TokenKind::kRParen)) {
            do {
              DELTAMON_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
              args.push_back(std::move(arg));
            } while (Match(TokenKind::kComma));
          }
          DELTAMON_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
          return Expr::Call(std::move(t.text), std::move(args), line);
        }
        return Expr::Variable(std::move(t.text), line);
      }
      default:
        return ErrorHere("expected an expression");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::vector<Statement>> ParseTokens(std::vector<Token> tokens) {
  Parser parser(std::move(tokens));
  return parser.ParseProgram();
}

Result<std::vector<Statement>> Parse(const std::string& source) {
  DELTAMON_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return ParseTokens(std::move(tokens));
}

}  // namespace deltamon::amosql
