#ifndef DELTAMON_AMOSQL_SESSION_H_
#define DELTAMON_AMOSQL_SESSION_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "amosql/compiler.h"
#include "amosql/parser.h"
#include "objectlog/eval.h"
#include "rules/engine.h"

namespace deltamon::obs {
struct RequestContext;
}  // namespace deltamon::obs

namespace deltamon::amosql {

/// Result of executing AMOSQL source: the rows of the last `select`
/// statement (empty for pure DDL/DML input) plus any session-command
/// output (`profile`, `show metrics`) accumulated in execution order.
struct QueryResult {
  std::vector<Tuple> rows;  // deterministically sorted
  /// Text report of profile / show metrics statements; empty otherwise.
  std::string report;

  std::string ToString() const;
};

/// An AMOSQL session over an Engine: parses and executes statements,
/// maintains interface variables (:item1) and registered foreign
/// procedures, and creates per-type extent relations on demand.
///
///   Engine engine;
///   Session session(engine);
///   session.RegisterProcedure("order", ...);
///   auto r = session.Execute(R"(
///     create type item;
///     create function quantity(item) -> integer;
///     ...
///     activate monitor_items();
///     set quantity(:item1) = 120;
///     commit;
///   )");
class Session : public ExtentProvider {
 public:
  /// A foreign procedure (paper §3: "foreign functions written in Lisp or
  /// C"), callable from rule actions: order(i, max_stock(i) - quantity(i)).
  using Procedure =
      std::function<Status(Database& db, const std::vector<Value>& args)>;

  explicit Session(Engine& engine) : engine_(engine) {}
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  ~Session() override {
    if (txn_mgr_ != nullptr) txn_mgr_->Release(txn_);
  }

  Engine& engine() { return engine_; }

  /// Switches the session into concurrent-transaction mode: statements
  /// take the manager's engine gate (shared for reads/DML, exclusive for
  /// DDL and admin commands), DML buffers into a private snapshot overlay
  /// instead of writing the shared store, and `commit` goes through the
  /// group-commit queue with first-committer-wins validation — a
  /// kTxnConflict result means the transaction was aborted and can be
  /// retried. Without this call the session keeps the single-threaded
  /// behavior: direct database writes and Database::Commit(). The manager
  /// must outlive the session. The network server attaches every
  /// connection's session to its engine's manager.
  void AttachTransactionManager(txn::TransactionManager* mgr) {
    txn_mgr_ = mgr;
  }
  txn::TransactionManager* transaction_manager() const { return txn_mgr_; }

  /// This session's transaction snapshot; last_commit describes the most
  /// recent group-commit wave that committed it (for tests and metrics).
  const TxnSnapshot& txn_snapshot() const { return txn_; }

  void RegisterProcedure(const std::string& name, Procedure proc) {
    procedures_[name] = std::move(proc);
  }

  /// Parses and executes every statement in `source`; fails fast on the
  /// first error. Returns the last select's rows.
  Result<QueryResult> Execute(const std::string& source);

  /// Execute with `profile` attached to everything the source evaluates
  /// (session evaluators and the propagator), exactly as `explain analyze`
  /// attaches one — used by the network executor's slow-statement capture.
  /// The previous profiler is restored afterwards.
  Result<QueryResult> ExecuteProfiled(const std::string& source,
                                      obs::Profile* profile);

  /// True once this session has successfully executed a `create rule`.
  /// Compiled rule actions capture a pointer to the creating session (for
  /// registered procedures), so such a session must outlive its
  /// connection; the network server uses this to decide whether to retire
  /// or destroy a session on disconnect.
  bool created_rules() const { return created_rules_; }

  /// Session environment (interface variables, without the ':').
  Result<Value> GetInterfaceVar(const std::string& name) const;
  void SetInterfaceVar(const std::string& name, Value value) {
    env_[name] = std::move(value);
  }

  /// ExtentProvider: the stored relation holding all objects of `type`
  /// created through this session (created lazily, named
  /// "_extent_<typename>").
  Result<RelationId> ExtentRelation(TypeId type) override;

 private:
  Status ExecStatement(const Statement& stmt, QueryResult* last_select);
  Status ExecProfile(const ProfileStmt& stmt, QueryResult* last_select);
  Status ExecExplainAnalyze(const ExplainAnalyzeStmt& stmt,
                            QueryResult* last_select);
  Status ExecAnalyzeRule(const AnalyzeRuleStmt& stmt,
                         QueryResult* last_select);
  Status ExecTrace(const TraceStmt& stmt, QueryResult* last_select);
  Status ExecShowNetwork(const ShowNetworkStmt& stmt, QueryResult* last_select);
  Status ExecShowSlow(QueryResult* last_select);
  Status ExecShowProvenance(QueryResult* last_select);
  Status ExecExplainFiring(const ExplainFiringStmt& stmt,
                           QueryResult* last_select);
  Status ExecDumpWaves(const DumpWavesStmt& stmt, QueryResult* last_select);
  Status ExecCreateFunction(const CreateFunctionStmt& stmt);
  Status ExecCreateRule(const CreateRuleStmt& stmt);
  Status ExecCreateInstances(const CreateInstancesStmt& stmt);
  Status ExecUpdate(const UpdateStmt& stmt);
  Status ExecActivate(const ActivateStmt& stmt);
  Status ExecSelect(const SelectStmt& stmt, QueryResult* out);

  Status ExecBegin();
  Status ExecCommit();
  Status ExecRollback();

  /// Evaluates a ground expression (no query variables) to a single Value.
  Result<Value> EvalGroundExpr(const Expr& expr);
  /// Evaluates several ground expressions.
  Result<std::vector<Value>> EvalGroundExprs(const std::vector<ExprPtr>& es);

  /// StateContext for session-level evaluators: routes stored-relation
  /// reads through the transaction snapshot (overlay view + footprint
  /// recording) when a manager is attached; plain otherwise.
  objectlog::StateContext EvalContext();

  /// Lazily registers the snapshot and — outside an explicit transaction,
  /// while nothing is buffered — re-snapshots it at the current version,
  /// so autocommit statements each get a fresh consistent read point.
  /// Caller must hold the engine gate.
  void RefreshSnapshotLocked();

  /// Feeds the profile's observed scan/probe selectivities into the
  /// catalog's StatsStore so subsequent literal orderings learn from them.
  void RecordObservedStats(const obs::Profile& profile);

  Engine& engine_;
  std::unordered_map<std::string, Value> env_;
  std::unordered_map<std::string, Procedure> procedures_;
  std::unordered_map<TypeId, RelationId> extents_;
  /// Non-null while an `explain analyze` statement is executing: every
  /// evaluator the session creates (selects, ground expressions, rule
  /// actions) attaches to it, and the rule manager routes it through the
  /// propagator so check-phase clauses are profiled too.
  obs::Profile* active_profiler_ = nullptr;
  int temp_counter_ = 0;
  bool created_rules_ = false;

  /// Concurrent-transaction mode (null = legacy single-threaded mode).
  txn::TransactionManager* txn_mgr_ = nullptr;
  TxnSnapshot txn_;
  /// Whether txn_ has been registered with the manager yet (lazy begin).
  bool txn_started_ = false;
  /// Set by DDL that writes tuples directly (create instances): those
  /// events bypass the overlay and ride the next commit wave, so commit
  /// must go through the queue even when the overlay is empty.
  bool ddl_dirty_ = false;
};

/// The single statement-execution entry point shared by every AMOSQL
/// front end — the interactive REPL (amosql_shell), the network server
/// (deltamond), the remote REPL (deltamon-cli via the server), and tests.
/// Parses and executes the ';'-terminated statements in `source` against
/// the session, failing fast on the first error. Front ends must not
/// parse or dispatch statements themselves; route everything through
/// here so the language has exactly one execution path.
Result<QueryResult> ExecuteStatement(Session& session,
                                     const std::string& source);

/// Per-request execution knobs for server front ends. `context` (when
/// non-null) identifies the request: the statement runs under a root
/// "amosql.statement" span carrying the connection id and ordinal, and —
/// because the executor installs the context's trace id for the duration —
/// every span the statement produces links back to it. `profiler` (when
/// non-null) receives the per-literal profile of everything the statement
/// evaluates, as `explain analyze` would.
struct StatementOptions {
  const obs::RequestContext* context = nullptr;
  obs::Profile* profiler = nullptr;
};

/// ExecuteStatement with request identity and optional profiling attached;
/// the plain overload above is equivalent to passing default options.
Result<QueryResult> ExecuteStatement(Session& session,
                                     const std::string& source,
                                     const StatementOptions& options);

/// Renders a QueryResult the way the REPL prints it: the rows (one per
/// line), a "(N rows)" trailer when any, then the session-command report.
std::string FormatResult(const QueryResult& result);

}  // namespace deltamon::amosql

#endif  // DELTAMON_AMOSQL_SESSION_H_
