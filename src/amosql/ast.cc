#include "amosql/ast.h"

namespace deltamon::amosql {

ExprPtr Expr::Literal(Value v, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  e->line = line;
  return e;
}

ExprPtr Expr::Variable(std::string name, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kVariable;
  e->name = std::move(name);
  e->line = line;
  return e;
}

ExprPtr Expr::Interface(std::string name, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kInterfaceVar;
  e->name = std::move(name);
  e->line = line;
  return e;
}

ExprPtr Expr::Call(std::string name, std::vector<ExprPtr> args, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kCall;
  e->name = std::move(name);
  e->args = std::move(args);
  e->line = line;
  return e;
}

ExprPtr Expr::Arith(objectlog::ArithOp op, ExprPtr lhs, ExprPtr rhs,
                    int line) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kArith;
  e->op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  e->line = line;
  return e;
}

PredicatePtr Predicate::Compare(objectlog::CompareOp op, ExprPtr lhs,
                                ExprPtr rhs, int line) {
  auto p = std::make_unique<Predicate>();
  p->kind = Kind::kCompare;
  p->cmp = op;
  p->lhs = std::move(lhs);
  p->rhs = std::move(rhs);
  p->line = line;
  return p;
}

PredicatePtr Predicate::And(PredicatePtr l, PredicatePtr r, int line) {
  auto p = std::make_unique<Predicate>();
  p->kind = Kind::kAnd;
  p->left = std::move(l);
  p->right = std::move(r);
  p->line = line;
  return p;
}

PredicatePtr Predicate::Or(PredicatePtr l, PredicatePtr r, int line) {
  auto p = std::make_unique<Predicate>();
  p->kind = Kind::kOr;
  p->left = std::move(l);
  p->right = std::move(r);
  p->line = line;
  return p;
}

PredicatePtr Predicate::Not(PredicatePtr c, int line) {
  auto p = std::make_unique<Predicate>();
  p->kind = Kind::kNot;
  p->child = std::move(c);
  p->line = line;
  return p;
}

PredicatePtr Predicate::Atom(ExprPtr call, int line) {
  auto p = std::make_unique<Predicate>();
  p->kind = Kind::kAtom;
  p->atom = std::move(call);
  p->line = line;
  return p;
}

}  // namespace deltamon::amosql
