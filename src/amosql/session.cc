#include "amosql/session.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <shared_mutex>

#include "objectlog/eval.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/report.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "obs/wave_recorder.h"

namespace deltamon::amosql {

using objectlog::Clause;
using objectlog::EvalState;
using objectlog::Evaluator;
using objectlog::StateContext;

namespace {

/// Scoped engine-gate acquisition for one leaf statement: shared for
/// reads and buffered DML, exclusive for DDL/admin statements that mutate
/// the catalog, rule set, or propagation network. A no-op in legacy mode
/// (no transaction manager attached). Wrapper statements (profile, trace,
/// explain analyze) take no lock themselves — their inner statement
/// re-dispatches and locks — so `profile commit;` cannot self-deadlock on
/// the non-reentrant gate.
struct GateLock {
  GateLock(txn::TransactionManager* mgr, bool exclusive) {
    if (mgr == nullptr) return;
    if (exclusive) {
      excl = std::unique_lock<std::shared_mutex>(mgr->engine_mutex());
    } else {
      shared = std::shared_lock<std::shared_mutex>(mgr->engine_mutex());
    }
  }
  std::shared_lock<std::shared_mutex> shared;
  std::unique_lock<std::shared_mutex> excl;
};

/// Uniform refusal for provenance/wave statements in OBS=OFF builds: the
/// Null twins would silently record nothing, which reads as "no firings"
/// — an explicit error is the honest answer.
Status ObsDisabled(const char* what) {
  return Status::FailedPrecondition(
      std::string(what) +
      ": observability disabled (built with DELTAMON_OBS=OFF)");
}

/// Renders one WaveLineage::Export node as indented text:
///   Δ+cnd_monitor(...)  [via Δcnd/Δ+quantity]
///     Δ+quantity(...)  (base)
void RenderLineageNode(const obs::Json& node, int indent, std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  const obs::Json* polarity = node.Get("polarity");
  const obs::Json* relation = node.Get("relation");
  const obs::Json* row = node.Get("row");
  *out += "Δ";
  if (polarity != nullptr) *out += polarity->as_string();
  if (relation != nullptr) *out += relation->as_string();
  if (row != nullptr) *out += " " + row->as_string();
  if (const obs::Json* via = node.Get("via")) {
    *out += "  [via " + via->as_string() + "]";
  }
  if (node.contains("base")) *out += "  (base)";
  if (node.contains("unknown")) *out += "  (unknown)";
  if (node.contains("truncated")) *out += "  (truncated)";
  *out += "\n";
  if (const obs::Json* inputs = node.Get("inputs")) {
    for (const obs::Json& child : inputs->array_items()) {
      RenderLineageNode(child, indent + 1, out);
    }
  }
}

}  // namespace

std::string QueryResult::ToString() const {
  std::string out;
  for (const Tuple& t : rows) {
    out += t.ToString();
    out += "\n";
  }
  out += report;
  return out;
}

Result<QueryResult> ExecuteStatement(Session& session,
                                     const std::string& source) {
  return session.Execute(source);
}

Result<QueryResult> ExecuteStatement(Session& session,
                                     const std::string& source,
                                     const StatementOptions& options) {
  // Root span of everything this statement evaluates; inherits the trace
  // id the executor installed, so the whole tree links to the request.
  DELTAMON_OBS_SPAN(stmt_span, "amosql", "statement");
  if (options.context != nullptr) {
    stmt_span.AddField("connection",
                       static_cast<int64_t>(options.context->connection_id));
    stmt_span.AddField(
        "statement_ordinal",
        static_cast<int64_t>(options.context->statement_ordinal));
  }
  if (options.profiler != nullptr) {
    return session.ExecuteProfiled(source, options.profiler);
  }
  return session.Execute(source);
}

std::string FormatResult(const QueryResult& result) {
  std::string out;
  for (const Tuple& t : result.rows) {
    out += t.ToString();
    out += "\n";
  }
  if (!result.rows.empty()) {
    out += "(" + std::to_string(result.rows.size()) + " rows)\n";
  }
  out += result.report;
  return out;
}

Result<Value> Session::GetInterfaceVar(const std::string& name) const {
  auto it = env_.find(name);
  if (it == env_.end()) {
    return Status::NotFound("undefined interface variable :" + name);
  }
  return it->second;
}

Result<RelationId> Session::ExtentRelation(TypeId type) {
  auto it = extents_.find(type);
  if (it != extents_.end()) return it->second;
  const ObjectType* meta = engine_.db.catalog().GetType(type);
  if (meta == nullptr) {
    return Status::NotFound("unknown type id " + std::to_string(type));
  }
  FunctionSignature sig;
  sig.argument_types.push_back(ColumnType{ValueKind::kObject, type});
  DELTAMON_ASSIGN_OR_RETURN(
      RelationId rel, engine_.db.catalog().CreateStoredFunction(
                          "_extent_" + meta->name, std::move(sig)));
  extents_[type] = rel;
  return rel;
}

Result<QueryResult> Session::Execute(const std::string& source) {
  DELTAMON_ASSIGN_OR_RETURN(std::vector<Statement> program, Parse(source));
  QueryResult last;
  for (const Statement& stmt : program) {
    DELTAMON_RETURN_IF_ERROR(ExecStatement(stmt, &last));
  }
  return last;
}

Result<QueryResult> Session::ExecuteProfiled(const std::string& source,
                                             obs::Profile* profile) {
  // Same attachment discipline as ExecExplainAnalyze: session evaluators
  // pick the profile up through active_profiler_, the rule manager routes
  // it through the propagator. Restored even on error so a failed slow
  // statement cannot leak the profiler into the next one. In concurrent-
  // transaction mode the rule manager is shared, so the profiler is not
  // installed globally here; commit passes it to the transaction manager,
  // which attaches it for this transaction's (solo) wave only.
  obs::Profile* const saved = active_profiler_;
  active_profiler_ = profile;
  if (txn_mgr_ == nullptr) engine_.rules.SetProfiler(profile);
  Result<QueryResult> result = Execute(source);
  if (txn_mgr_ == nullptr) engine_.rules.SetProfiler(nullptr);
  active_profiler_ = saved;
  return result;
}

Status Session::ExecStatement(const Statement& stmt, QueryResult* last) {
  // Locking happens here, at leaf statement dispatch: reads and buffered
  // DML share the engine gate, DDL/admin statements that mutate shared
  // engine state take it exclusively, and transaction-boundary statements
  // (begin/commit/abort) do their own locking — commit in particular must
  // enter the group-commit queue without the gate held, since the commit
  // leader takes it exclusively for the wave.
  return std::visit(
      [this, last](const auto& node) -> Status {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, CreateTypeStmt>) {
          GateLock lock(txn_mgr_, /*exclusive=*/true);
          return engine_.db.catalog().CreateType(node.name).status();
        } else if constexpr (std::is_same_v<T, CreateFunctionStmt>) {
          GateLock lock(txn_mgr_, /*exclusive=*/true);
          return ExecCreateFunction(node);
        } else if constexpr (std::is_same_v<T, CreateRuleStmt>) {
          GateLock lock(txn_mgr_, /*exclusive=*/true);
          return ExecCreateRule(node);
        } else if constexpr (std::is_same_v<T, CreateInstancesStmt>) {
          GateLock lock(txn_mgr_, /*exclusive=*/true);
          return ExecCreateInstances(node);
        } else if constexpr (std::is_same_v<T, UpdateStmt>) {
          GateLock lock(txn_mgr_, /*exclusive=*/false);
          RefreshSnapshotLocked();
          return ExecUpdate(node);
        } else if constexpr (std::is_same_v<T, ActivateStmt>) {
          GateLock lock(txn_mgr_, /*exclusive=*/true);
          return ExecActivate(node);
        } else if constexpr (std::is_same_v<T, SelectStmt>) {
          GateLock lock(txn_mgr_, /*exclusive=*/false);
          RefreshSnapshotLocked();
          return ExecSelect(node, last);
        } else if constexpr (std::is_same_v<T, BeginStmt>) {
          return ExecBegin();
        } else if constexpr (std::is_same_v<T, CommitStmt>) {
          return ExecCommit();
        } else if constexpr (std::is_same_v<T, ProfileStmt>) {
          return ExecProfile(node, last);
        } else if constexpr (std::is_same_v<T, ShowMetricsStmt>) {
          if (node.prometheus) {
            // Pure exposition text (no header) so the output can be served
            // to a scraper by copy-paste or file tail.
            last->report +=
                obs::FormatPrometheus(obs::Registry::Global().Snapshot());
          } else {
            last->report += "METRICS\n" + obs::FormatSnapshot(
                                              obs::Registry::Global().Snapshot());
          }
          return Status::OK();
        } else if constexpr (std::is_same_v<T, ExplainAnalyzeStmt>) {
          return ExecExplainAnalyze(node, last);
        } else if constexpr (std::is_same_v<T, AnalyzeRuleStmt>) {
          GateLock lock(txn_mgr_, /*exclusive=*/true);
          return ExecAnalyzeRule(node, last);
        } else if constexpr (std::is_same_v<T, TraceStmt>) {
          return ExecTrace(node, last);
        } else if constexpr (std::is_same_v<T, ShowNetworkStmt>) {
          // Exclusive: network() rebuilds the propagation network lazily.
          GateLock lock(txn_mgr_, /*exclusive=*/true);
          return ExecShowNetwork(node, last);
        } else if constexpr (std::is_same_v<T, ShowSlowStmt>) {
          return ExecShowSlow(last);
        } else if constexpr (std::is_same_v<T, ResetMetricsStmt>) {
          GateLock lock(txn_mgr_, /*exclusive=*/true);
          obs::Registry::Global().Reset();
          // Node attribution belongs to the same observable state; a reset
          // gives the next measurement a clean slate for both.
          Result<const core::PropagationNetwork*> net = engine_.rules.network();
          if (net.ok() && net.value() != nullptr) net.value()->ResetStats();
          last->report += "METRICS RESET\n";
          return Status::OK();
        } else if constexpr (std::is_same_v<T, SetThreadsStmt>) {
          GateLock lock(txn_mgr_, /*exclusive=*/true);
          engine_.rules.SetNumThreads(
              static_cast<size_t>(node.num_threads));
          last->report += "THREADS " +
                          std::to_string(engine_.rules.num_threads()) + "\n";
          return Status::OK();
        } else if constexpr (std::is_same_v<T, SetKernelsStmt>) {
          GateLock lock(txn_mgr_, /*exclusive=*/true);
          engine_.rules.SetKernelsEnabled(node.on);
          last->report +=
              std::string("KERNELS ") + (node.on ? "on" : "off") + "\n";
          return Status::OK();
        } else if constexpr (std::is_same_v<T, ShowSettingsStmt>) {
          GateLock lock(txn_mgr_, /*exclusive=*/false);
          last->report += "SETTINGS\n";
          last->report += "  threads " +
                          std::to_string(engine_.rules.num_threads()) + "\n";
          last->report += std::string("  kernels ") +
                          (engine_.rules.kernels_enabled() ? "on" : "off") +
                          "\n";
          last->report +=
              "  slow_ms " +
              std::to_string(obs::SlowLog::Global().threshold_ns() /
                             1000000) +
              "\n";
          last->report += std::string("  provenance ") +
                          (engine_.rules.provenance_enabled() ? "on" : "off") +
                          "\n";
          last->report +=
              std::string("  wave_capture ") +
              (engine_.rules.wave_capture_enabled() ? "on" : "off") + "\n";
          return Status::OK();
        } else if constexpr (std::is_same_v<T, SetSlowMsStmt>) {
          // Works in OBS=OFF builds too: the slow log is server plumbing,
          // not a metrics-layer twin.
          obs::SlowLog::Global().set_threshold_ns(
              static_cast<uint64_t>(node.slow_ms) * 1000000ull);
          last->report += "SLOW_MS " + std::to_string(node.slow_ms) + "\n";
          return Status::OK();
        } else if constexpr (std::is_same_v<T, SetProvenanceStmt>) {
          if (!DELTAMON_OBS_ENABLED) return ObsDisabled("set provenance");
          // Exclusive: flips what concurrent commit waves capture.
          GateLock lock(txn_mgr_, /*exclusive=*/true);
          engine_.rules.SetProvenanceEnabled(node.on);
          last->report +=
              std::string("PROVENANCE ") + (node.on ? "on" : "off") + "\n";
          return Status::OK();
        } else if constexpr (std::is_same_v<T, SetWaveCaptureStmt>) {
          if (!DELTAMON_OBS_ENABLED) return ObsDisabled("set wave_capture");
          GateLock lock(txn_mgr_, /*exclusive=*/true);
          engine_.rules.SetWaveCaptureEnabled(node.on);
          last->report +=
              std::string("WAVE_CAPTURE ") + (node.on ? "on" : "off") + "\n";
          return Status::OK();
        } else if constexpr (std::is_same_v<T, DumpWavesStmt>) {
          return ExecDumpWaves(node, last);
        } else if constexpr (std::is_same_v<T, ExplainFiringStmt>) {
          return ExecExplainFiring(node, last);
        } else if constexpr (std::is_same_v<T, ShowProvenanceStmt>) {
          return ExecShowProvenance(last);
        } else {
          static_assert(std::is_same_v<T, RollbackStmt>);
          return ExecRollback();
        }
      },
      stmt.node);
}

void Session::RefreshSnapshotLocked() {
  if (txn_mgr_ == nullptr) return;
  if (!txn_started_) {
    txn_mgr_->Begin(txn_);
    txn_started_ = true;
    return;
  }
  // Autocommit refresh: outside an explicit transaction, a statement that
  // follows only reads re-snapshots at the current version (dropping the
  // previous statements' footprints — each read-only statement validates
  // on its own). Once anything is buffered, the snapshot is pinned until
  // commit or abort.
  if (!txn_.explicit_begin() && !txn_.HasWrites() && !ddl_dirty_) {
    txn_mgr_->Begin(txn_);
  }
}

StateContext Session::EvalContext() {
  StateContext ctx;
  if (txn_mgr_ != nullptr) ctx.txn = &txn_;
  return ctx;
}

Status Session::ExecBegin() {
  if (txn_mgr_ == nullptr) return Status::OK();  // always in a transaction
  GateLock lock(txn_mgr_, /*exclusive=*/false);
  if (txn_started_ && txn_.HasWrites()) {
    return Status::FailedPrecondition(
        "begin: transaction has buffered changes; commit or abort first");
  }
  txn_mgr_->Begin(txn_);
  txn_started_ = true;
  txn_.set_explicit_begin(true);
  return Status::OK();
}

Status Session::ExecCommit() {
  if (txn_mgr_ == nullptr) return engine_.db.Commit();
  if (!txn_started_ || (!txn_.HasWrites() && !ddl_dirty_)) {
    // Read-only commit: nothing to validate or propagate. Restart the
    // snapshot at the current version without a queue round trip.
    GateLock lock(txn_mgr_, /*exclusive=*/false);
    txn_mgr_->Begin(txn_);
    txn_started_ = true;
    return Status::OK();
  }
  // Group commit; a non-null profiler (explain analyze / slow capture)
  // forces a batch-of-one so the profile describes only this transaction.
  Status s = txn_mgr_->Commit(txn_, active_profiler_);
  txn_started_ = true;  // the manager re-registered the snapshot
  if (s.code() != StatusCode::kTxnConflict) {
    // Direct DDL writes either committed with the wave or (on a check
    // failure) were rolled back with it; on a conflict the wave may not
    // have run at all, so keep the flag and flush on the next commit.
    ddl_dirty_ = false;
  }
  return s;
}

Status Session::ExecRollback() {
  if (txn_mgr_ == nullptr) return engine_.db.Rollback();
  // Abort: discard the buffered overlay and read footprint and restart at
  // the current version. Direct DDL writes are not transactional and stay
  // applied (they ride the next commit wave).
  GateLock lock(txn_mgr_, /*exclusive=*/false);
  txn_mgr_->Begin(txn_);
  txn_started_ = true;
  return Status::OK();
}

Status Session::ExecProfile(const ProfileStmt& stmt, QueryResult* last) {
  obs::Registry& registry = obs::Registry::Global();
  obs::MetricsSnapshot before = registry.Snapshot();
  auto start = std::chrono::steady_clock::now();
  Status status = ExecStatement(*stmt.inner, last);
  auto elapsed = std::chrono::steady_clock::now() - start;
  DELTAMON_RETURN_IF_ERROR(status);

  double ms = std::chrono::duration<double, std::milli>(elapsed).count();
  char header[64];
  std::snprintf(header, sizeof(header), "PROFILE %.3f ms\n", ms);
  last->report += header;
  obs::MetricsSnapshot diff = registry.Snapshot().DiffSince(before);
  last->report += obs::FormatSnapshot(diff);

  // If the statement ran a propagation wave (commit, or any update under
  // immediate rule processing), show which partial differentials executed
  // — the paper's §8 "which influents caused the rule to trigger" answer.
  // Under concurrency the trace belongs to the rule manager's most recent
  // wave, which may include (or be) another session's work — read it under
  // the shared gate so it is at least a consistent wave.
  GateLock lock(txn_mgr_, /*exclusive=*/false);
  const std::vector<core::TraceEntry>& trace = engine_.rules.last_trace();
  if (!trace.empty() && diff.counters.contains("propagator.waves")) {
    last->report += "differentials:\n";
    for (const core::TraceEntry& e : trace) {
      last->report += "  " + e.ToString(engine_.db.catalog()) + "\n";
    }
  }
  return Status::OK();
}

void Session::RecordObservedStats(const obs::Profile& profile) {
  StatsStore& stats = engine_.db.catalog().stats();
  for (const auto& [label, cp] : profile.clauses()) {
    for (const obs::LiteralProfile& slot : cp.slots) {
      // Only extent accesses carry a (relation, role, nbound) key the
      // ordering optimizer can look up; filters and binders don't. The
      // batch kernels relabel extent accesses with their join strategy
      // but keep the same key and counter semantics.
      if (slot.access != "scan" && slot.access.rfind("probe", 0) != 0 &&
          slot.access.rfind("hash-join", 0) != 0 &&
          slot.access != "semijoin-filtered") {
        continue;
      }
      stats.Record(slot.relation, slot.role, slot.nbound,
                   slot.bindings_tried, slot.rows_out);
    }
  }
}

Status Session::ExecExplainAnalyze(const ExplainAnalyzeStmt& stmt,
                                   QueryResult* last) {
  // Attach one profile to everything the wrapped statement evaluates:
  // session-level evaluators pick it up through active_profiler_, and the
  // rule manager threads it through the propagator (per-worker profiles,
  // serial merge) so output is bit-identical at any thread count.
  obs::Profile profile;
  obs::Profile* const saved = active_profiler_;
  active_profiler_ = &profile;
  // In concurrent-transaction mode the shared rule manager's profiler is
  // not touched here: an inner commit hands active_profiler_ to the
  // transaction manager, which profiles that transaction's solo wave.
  if (txn_mgr_ == nullptr) engine_.rules.SetProfiler(&profile);
  Status status = ExecStatement(*stmt.inner, last);
  if (txn_mgr_ == nullptr) engine_.rules.SetProfiler(nullptr);
  active_profiler_ = saved;
  DELTAMON_RETURN_IF_ERROR(status);

  // Feed observed selectivities back so the next ordering decision (and
  // the estimates of the next explain analyze) can use them. The stats
  // store hangs off the shared catalog — exclusive gate.
  {
    GateLock lock(txn_mgr_, /*exclusive=*/true);
    RecordObservedStats(profile);
  }

  last->report += "EXPLAIN ANALYZE\n";
  last->report += profile.Format(/*include_time=*/true);
  if (!stmt.path.empty()) {
    DELTAMON_RETURN_IF_ERROR(
        obs::WriteTextFile(stmt.path, profile.ToJson().Dump()));
    last->report += "PROFILE JSON " + stmt.path + "\n";
  }
  return Status::OK();
}

Status Session::ExecAnalyzeRule(const AnalyzeRuleStmt& stmt,
                                QueryResult* last) {
  DELTAMON_ASSIGN_OR_RETURN(rules::RuleId rule,
                            engine_.rules.FindRule(stmt.rule));
  DELTAMON_ASSIGN_OR_RETURN(std::vector<RelationId> conditions,
                            engine_.rules.MonitoredConditions(rule));
  // Full (re)evaluation of the rule's condition relation(s) under the
  // profiler: the point is the per-literal cardinality census, not the
  // result, so the rows are discarded and only the stats are kept.
  obs::Profile profile;
  Evaluator evaluator(engine_.db, engine_.registry, StateContext{});
  evaluator.SetProfiler(&profile);
  for (RelationId cond : conditions) {
    TupleSet rows;
    DELTAMON_RETURN_IF_ERROR(evaluator.Evaluate(cond, EvalState::kNew, &rows));
  }
  RecordObservedStats(profile);
  last->report += "ANALYZE RULE " + stmt.rule + "\n";
  last->report += profile.Format(/*include_time=*/true);
  return Status::OK();
}

Status Session::ExecTrace(const TraceStmt& stmt, QueryResult* last) {
  // Record into a private ring so a surrounding sink (another trace, a
  // test's sink) is shadowed for the statement and restored afterwards.
  obs::RingTraceSink ring(/*capacity=*/65536);
  obs::TraceSink* previous = obs::GetTraceSink();
  obs::SetTraceSink(&ring);
  Status status = ExecStatement(*stmt.inner, last);
  obs::SetTraceSink(previous);
  DELTAMON_RETURN_IF_ERROR(status);

  const std::string path =
      stmt.path.empty() ? std::string("deltamon_trace.json") : stmt.path;
  DELTAMON_RETURN_IF_ERROR(obs::WriteChromeTrace(ring.events(), path));
  last->report += "TRACE " + path + "\n";
  if (ring.dropped_events() > 0) {
    last->report += "(ring overflow: " +
                    std::to_string(ring.dropped_events()) +
                    " events dropped)\n";
  }
  last->report += obs::FormatSpanTree(ring.events());
  return Status::OK();
}

Status Session::ExecShowNetwork(const ShowNetworkStmt& stmt,
                                QueryResult* last) {
  DELTAMON_ASSIGN_OR_RETURN(const core::PropagationNetwork* net,
                            engine_.rules.network());
  if (net == nullptr) {
    last->report += "NETWORK (empty: no active rules)\n";
    return Status::OK();
  }
  const Catalog& catalog = engine_.db.catalog();
  std::vector<RelationId> roots;
  if (stmt.rule.empty()) {
    roots.push_back(kInvalidRelationId);  // the whole network
  } else {
    DELTAMON_ASSIGN_OR_RETURN(rules::RuleId rule,
                              engine_.rules.FindRule(stmt.rule));
    DELTAMON_ASSIGN_OR_RETURN(roots, engine_.rules.MonitoredConditions(rule));
  }
  last->report += "NETWORK\n";
  if (stmt.rule.empty()) last->report += net->ToString(catalog);
  for (RelationId root : roots) {
    last->report += net->ToDot(catalog, root);
  }
  // Per-node clause profiles accumulated by profiled waves (`explain
  // analyze ... commit`), in relation-id order so output is stable.
  std::vector<RelationId> profiled;
  for (const auto& [rel, node] : net->nodes()) {
    if (!node.profile.empty()) profiled.push_back(rel);
  }
  std::sort(profiled.begin(), profiled.end());
  for (RelationId rel : profiled) {
    last->report += "profile " + catalog.RelationName(rel) + ":\n";
    last->report += net->nodes().at(rel).profile.Format(/*include_time=*/true);
  }
  return Status::OK();
}

Status Session::ExecShowSlow(QueryResult* last) {
  last->report += obs::SlowLog::Global().Format();
  return Status::OK();
}

Status Session::ExecShowProvenance(QueryResult* last) {
  if (!DELTAMON_OBS_ENABLED) return ObsDisabled("show provenance");
  const auto& log = obs::GlobalProvenanceLog();
  last->report += obs::FormatProvenance(log.Snapshot(), log.enabled(),
                                        log.total_records(),
                                        log.dropped_records());
  return Status::OK();
}

Status Session::ExecExplainFiring(const ExplainFiringStmt& stmt,
                                  QueryResult* last) {
  if (!DELTAMON_OBS_ENABLED) return ObsDisabled("explain firing");
  {
    // A typo'd rule name should error as such, not as "no recorded
    // firing". Shared gate: FindRule only reads the rule table.
    GateLock lock(txn_mgr_, /*exclusive=*/false);
    DELTAMON_RETURN_IF_ERROR(engine_.rules.FindRule(stmt.rule).status());
  }
  const auto& log = obs::GlobalProvenanceLog();
  const std::vector<obs::FiringRecord> records = log.Snapshot();
  const obs::FiringRecord* hit = nullptr;
  int64_t remaining = stmt.nth;
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    if (it->rule != stmt.rule) continue;
    if (--remaining == 0) {
      hit = &*it;
      break;
    }
  }
  if (hit == nullptr) {
    std::string msg = "no recorded firing of rule '" + stmt.rule + "'";
    if (stmt.nth > 1) msg += " at depth " + std::to_string(stmt.nth);
    if (!log.enabled()) {
      msg += " (provenance is off; `set provenance on;` first)";
    }
    return Status::NotFound(std::move(msg));
  }

  last->report += "EXPLAIN FIRING " + hit->rule + " [" +
                  std::to_string(hit->seq) + "]\n";
  char line[128];
  std::snprintf(line, sizeof(line),
                "  trace %016llx  version %llu  round %llu\n",
                static_cast<unsigned long long>(hit->trace_id),
                static_cast<unsigned long long>(hit->version),
                static_cast<unsigned long long>(hit->round));
  last->report += line;
  last->report += "  instances " + std::to_string(hit->total_instances);
  if (hit->captured_instances < hit->total_instances) {
    last->report += " (lineage captured for first " +
                    std::to_string(hit->captured_instances) + ")";
  }
  last->report += "\n";
  for (size_t i = 0; i < hit->lineage.size(); ++i) {
    last->report += "  instance " + hit->instances[i] + ":\n";
    RenderLineageNode(hit->lineage.at(i), /*indent=*/2, &last->report);
  }
  if (!stmt.path.empty()) {
    DELTAMON_RETURN_IF_ERROR(
        obs::WriteTextFile(stmt.path, hit->ToJson().Dump()));
    last->report += "FIRING JSON " + stmt.path + "\n";
  }
  return Status::OK();
}

Status Session::ExecDumpWaves(const DumpWavesStmt& stmt, QueryResult* last) {
  if (!DELTAMON_OBS_ENABLED) return ObsDisabled("dump waves");
  const auto& recorder = obs::GlobalWaveRecorder();
  const std::vector<obs::WaveRecord> waves = recorder.Snapshot();
  const obs::Json doc = obs::WaveFileJson(
      waves, recorder.enabled(), recorder.capacity(),
      recorder.total_records(), recorder.dropped_records());
  DELTAMON_RETURN_IF_ERROR(obs::WriteTextFile(stmt.path, doc.Dump()));
  last->report += "WAVES " + stmt.path + " (" +
                  std::to_string(waves.size()) + " waves)\n";
  return Status::OK();
}

Status Session::ExecCreateFunction(const CreateFunctionStmt& stmt) {
  Catalog& catalog = engine_.db.catalog();
  FunctionSignature sig;
  for (const ParamDecl& p : stmt.params) {
    DELTAMON_ASSIGN_OR_RETURN(ColumnType type,
                              ResolveTypeName(catalog, p.type_name, p.line));
    sig.argument_types.push_back(type);
  }
  for (const std::string& r : stmt.result_types) {
    DELTAMON_ASSIGN_OR_RETURN(ColumnType type,
                              ResolveTypeName(catalog, r, 0));
    sig.result_types.push_back(type);
  }
  if (stmt.aggregate.has_value()) {
    const AggregateBody& agg = *stmt.aggregate;
    // Group columns are the function's parameters: `sum trades(d)` groups
    // the trades relation by its argument columns and aggregates its
    // (single) result column.
    if (agg.args.size() != stmt.params.size()) {
      return Status::InvalidArgument(
          "aggregate over '" + agg.source + "' must be applied to the " +
          "function parameters, at line " + std::to_string(agg.line));
    }
    for (size_t i = 0; i < agg.args.size(); ++i) {
      if (agg.args[i] != stmt.params[i].var_name) {
        return Status::InvalidArgument(
            "aggregate argument '" + agg.args[i] +
            "' must be parameter '" + stmt.params[i].var_name +
            "', at line " + std::to_string(agg.line));
      }
    }
    DELTAMON_ASSIGN_OR_RETURN(RelationId source,
                              catalog.FindRelation(agg.source));
    const FunctionSignature* src_sig = catalog.GetSignature(source);
    if (src_sig->argument_types.size() != agg.args.size()) {
      return Status::InvalidArgument(
          "'" + agg.source + "' takes " +
          std::to_string(src_sig->argument_types.size()) +
          " arguments, aggregate groups by " +
          std::to_string(agg.args.size()));
    }
    objectlog::AggregateDef def;
    def.source = source;
    for (size_t i = 0; i < agg.args.size(); ++i) def.group_by.push_back(i);
    def.value_column = src_sig->argument_types.size();
    if (agg.func == "count") {
      def.func = objectlog::AggregateDef::Func::kCount;
      def.value_column = 0;
    } else if (agg.func == "sum") {
      def.func = objectlog::AggregateDef::Func::kSum;
    } else if (agg.func == "min") {
      def.func = objectlog::AggregateDef::Func::kMin;
    } else {
      def.func = objectlog::AggregateDef::Func::kMax;
    }
    if (def.func != objectlog::AggregateDef::Func::kCount &&
        src_sig->result_types.size() != 1) {
      return Status::InvalidArgument(
          "'" + agg.source + "' must have exactly one result column to be "
          "aggregated, at line " + std::to_string(agg.line));
    }
    DELTAMON_ASSIGN_OR_RETURN(
        RelationId rel, catalog.CreateDerivedFunction(stmt.name,
                                                      std::move(sig)));
    return engine_.registry.DefineAggregate(rel, std::move(def), catalog);
  }
  if (!stmt.body.has_value()) {
    return catalog.CreateStoredFunction(stmt.name, std::move(sig)).status();
  }
  // Derived function: head = params ++ select results.
  DELTAMON_ASSIGN_OR_RETURN(
      RelationId rel, catalog.CreateDerivedFunction(stmt.name,
                                                    std::move(sig)));
  if (stmt.body->results.size() != stmt.result_types.size()) {
    return Status::InvalidArgument(
        "derived function '" + stmt.name + "' declares " +
        std::to_string(stmt.result_types.size()) + " results but selects " +
        std::to_string(stmt.body->results.size()));
  }
  Compiler compiler(engine_, env_, *this);
  DELTAMON_ASSIGN_OR_RETURN(
      CompiledQuery query,
      compiler.CompileQuery(rel, stmt.params, stmt.body->for_each,
                            /*include_for_each_in_head=*/false,
                            stmt.body->results, stmt.body->where.get()));
  for (Clause& clause : query.clauses) {
    DELTAMON_RETURN_IF_ERROR(
        engine_.registry.Define(rel, std::move(clause), catalog));
  }
  return Status::OK();
}

Status Session::ExecCreateRule(const CreateRuleStmt& stmt) {
  Catalog& catalog = engine_.db.catalog();
  // Condition function cnd_<rule>(params) -> (for-each vars), as the rule
  // compiler of paper §3.2.
  FunctionSignature sig;
  for (const ParamDecl& p : stmt.params) {
    DELTAMON_ASSIGN_OR_RETURN(ColumnType type,
                              ResolveTypeName(catalog, p.type_name, p.line));
    sig.argument_types.push_back(type);
  }
  for (const VarDecl& d : stmt.for_each) {
    DELTAMON_ASSIGN_OR_RETURN(ColumnType type,
                              ResolveTypeName(catalog, d.type_name, d.line));
    sig.result_types.push_back(type);
  }
  DELTAMON_ASSIGN_OR_RETURN(
      RelationId cond, catalog.CreateDerivedFunction("cnd_" + stmt.name,
                                                     std::move(sig)));
  Compiler compiler(engine_, env_, *this);
  DELTAMON_ASSIGN_OR_RETURN(
      CompiledQuery query,
      compiler.CompileQuery(cond, stmt.params, stmt.for_each,
                            /*include_for_each_in_head=*/true,
                            /*results=*/{}, stmt.condition.get()));
  for (Clause& clause : query.clauses) {
    DELTAMON_RETURN_IF_ERROR(
        engine_.registry.Define(cond, std::move(clause), catalog));
  }

  // Action: compile the argument expressions against the same variable
  // layout; instances and activation parameters are bound at fire time.
  const size_t num_params = stmt.params.size();
  const size_t num_instance_vars = stmt.for_each.size();
  const int num_named = static_cast<int>(num_params + num_instance_vars);

  std::vector<const Expr*> exprs;
  RelationId set_relation = kInvalidRelationId;
  size_t set_num_args = 0;
  std::string proc_name;
  if (stmt.action.kind == RuleActionStmt::Kind::kProcedureCall) {
    proc_name = stmt.action.call->name;
    for (const ExprPtr& a : stmt.action.call->args) exprs.push_back(a.get());
  } else {
    const Expr& target = *stmt.action.set_target;
    DELTAMON_ASSIGN_OR_RETURN(set_relation,
                              catalog.FindRelation(target.name));
    if (catalog.GetBaseRelation(set_relation) == nullptr) {
      return Status::InvalidArgument("set action target '" + target.name +
                                     "' is not a stored function");
    }
    set_num_args = target.args.size();
    for (const ExprPtr& a : target.args) exprs.push_back(a.get());
    exprs.push_back(stmt.action.set_value.get());
  }
  DELTAMON_ASSIGN_OR_RETURN(
      Clause action_clause,
      compiler.CompileScalarExprs(exprs, query.named_vars, num_named));
  action_clause.profile_label = "action:" + stmt.name;

  auto shared_clause = std::make_shared<Clause>(std::move(action_clause));
  Session* session = this;
  rules::RuleAction action =
      [session, shared_clause, num_params, num_instance_vars, set_relation,
       set_num_args, proc_name,
       kind = stmt.action.kind](Database& db, const Tuple& params,
                                const std::vector<Tuple>& instances)
      -> Status {
    // Actions run inside the deferred check phase, possibly on the commit
    // leader's thread on behalf of a whole wave — the profiler (if any) is
    // whichever one the rule manager has armed for this wave, not this
    // session's. (Single-threaded mode sets both to the same profile.)
    Evaluator evaluator(db, session->engine_.registry, StateContext{});
    evaluator.SetProfiler(session->engine_.rules.profiler());
    for (const Tuple& instance : instances) {
      std::vector<std::pair<int, Value>> bindings;
      for (size_t i = 0; i < num_params; ++i) {
        bindings.emplace_back(static_cast<int>(i), params[i]);
      }
      for (size_t j = 0; j < num_instance_vars; ++j) {
        bindings.emplace_back(static_cast<int>(num_params + j), instance[j]);
      }
      TupleSet values;
      DELTAMON_RETURN_IF_ERROR(evaluator.EvaluateClauseWithBindings(
          *shared_clause, bindings, &values));
      if (values.empty()) {
        return Status::FailedPrecondition(
            "rule action expression is undefined for instance " +
            instance.ToString());
      }
      for (const Tuple& row : SortedTuples(values)) {
        if (kind == RuleActionStmt::Kind::kSet) {
          std::vector<Value> args(row.values().begin(),
                                  row.values().begin() +
                                      static_cast<long>(set_num_args));
          std::vector<Value> results(row.values().begin() +
                                         static_cast<long>(set_num_args),
                                     row.values().end());
          DELTAMON_RETURN_IF_ERROR(db.Set(set_relation,
                                          Tuple(std::move(args)),
                                          Tuple(std::move(results))));
        } else {
          auto proc = session->procedures_.find(proc_name);
          if (proc == session->procedures_.end()) {
            return Status::NotFound("procedure '" + proc_name +
                                    "' is not registered");
          }
          DELTAMON_RETURN_IF_ERROR(proc->second(db, row.values()));
        }
      }
    }
    return Status::OK();
  };

  rules::RuleOptions options;
  options.semantics = stmt.nervous ? rules::Semantics::kNervous
                                   : rules::Semantics::kStrict;
  options.num_params = num_params;
  DELTAMON_RETURN_IF_ERROR(
      engine_.rules.CreateRule(stmt.name, cond, std::move(action), options)
          .status());
  created_rules_ = true;
  return Status::OK();
}

Status Session::ExecCreateInstances(const CreateInstancesStmt& stmt) {
  Catalog& catalog = engine_.db.catalog();
  DELTAMON_ASSIGN_OR_RETURN(TypeId type, catalog.FindType(stmt.type_name));
  DELTAMON_ASSIGN_OR_RETURN(RelationId extent, ExtentRelation(type));
  for (const std::string& name : stmt.interface_vars) {
    DELTAMON_ASSIGN_OR_RETURN(Oid oid, catalog.CreateObject(type));
    env_[name] = Value(oid);
    // DDL writes directly (under the exclusive gate), not through the
    // overlay: extent tuples must be visible to the statements that follow
    // in this same batch of source, in every session. The logged events
    // ride the next commit wave.
    DELTAMON_RETURN_IF_ERROR(engine_.db.Insert(extent, Tuple{Value(oid)}));
  }
  if (txn_mgr_ != nullptr) ddl_dirty_ = true;
  return Status::OK();
}

Result<Value> Session::EvalGroundExpr(const Expr& expr) {
  if (expr.kind == Expr::Kind::kLiteral) return expr.literal;
  if (expr.kind == Expr::Kind::kInterfaceVar) {
    return GetInterfaceVar(expr.name);
  }
  if (expr.kind == Expr::Kind::kVariable) {
    return Status::InvalidArgument("query variable '" + expr.name +
                                   "' is not allowed here (line " +
                                   std::to_string(expr.line) + ")");
  }
  Compiler compiler(engine_, env_, *this);
  DELTAMON_ASSIGN_OR_RETURN(Clause clause,
                            compiler.CompileScalarExprs({&expr}, {}, 0));
  clause.profile_label = "expr@" + std::to_string(expr.line);
  Evaluator evaluator(engine_.db, engine_.registry, EvalContext());
  evaluator.SetProfiler(active_profiler_);
  TupleSet out;
  DELTAMON_RETURN_IF_ERROR(evaluator.EvaluateClause(clause, &out));
  if (out.empty()) {
    return Status::NotFound("expression at line " + std::to_string(expr.line) +
                            " has no value");
  }
  if (out.size() > 1) {
    return Status::FailedPrecondition("expression at line " +
                                      std::to_string(expr.line) +
                                      " is multi-valued; expected one value");
  }
  return (*out.begin())[0];
}

Result<std::vector<Value>> Session::EvalGroundExprs(
    const std::vector<ExprPtr>& es) {
  std::vector<Value> out;
  out.reserve(es.size());
  for (const ExprPtr& e : es) {
    DELTAMON_ASSIGN_OR_RETURN(Value v, EvalGroundExpr(*e));
    out.push_back(std::move(v));
  }
  return out;
}

Status Session::ExecUpdate(const UpdateStmt& stmt) {
  Catalog& catalog = engine_.db.catalog();
  const Expr& target = *stmt.target;
  DELTAMON_ASSIGN_OR_RETURN(RelationId rel, catalog.FindRelation(target.name));
  if (catalog.GetBaseRelation(rel) == nullptr) {
    return Status::InvalidArgument("'" + target.name +
                                   "' is not a stored function");
  }
  const FunctionSignature* sig = catalog.GetSignature(rel);
  if (target.args.size() != sig->argument_types.size()) {
    return Status::InvalidArgument(
        "'" + target.name + "' expects " +
        std::to_string(sig->argument_types.size()) + " arguments");
  }
  DELTAMON_ASSIGN_OR_RETURN(std::vector<Value> args,
                            EvalGroundExprs(target.args));
  DELTAMON_ASSIGN_OR_RETURN(Value value, EvalGroundExpr(*stmt.value));
  Tuple arg_tuple{std::move(args)};
  if (txn_mgr_ != nullptr) {
    // Concurrent-transaction mode: DML folds into the session's private
    // overlay (view-aware, footprint-recorded) and reaches the shared
    // store only when a commit wave applies it.
    switch (stmt.kind) {
      case UpdateStmt::Kind::kSet:
        return txn_.BufferSet(catalog, rel, arg_tuple,
                              Tuple{std::move(value)});
      case UpdateStmt::Kind::kAdd:
        return txn_.BufferInsert(catalog, rel,
                                 arg_tuple.Concat(Tuple{std::move(value)}));
      case UpdateStmt::Kind::kRemove:
        return txn_.BufferDelete(catalog, rel,
                                 arg_tuple.Concat(Tuple{std::move(value)}));
    }
    return Status::Internal("unknown update kind");
  }
  switch (stmt.kind) {
    case UpdateStmt::Kind::kSet:
      return engine_.db.Set(rel, arg_tuple, Tuple{std::move(value)});
    case UpdateStmt::Kind::kAdd:
      return engine_.db.Insert(rel,
                               arg_tuple.Concat(Tuple{std::move(value)}));
    case UpdateStmt::Kind::kRemove:
      return engine_.db.Delete(rel,
                               arg_tuple.Concat(Tuple{std::move(value)}));
  }
  return Status::Internal("unknown update kind");
}

Status Session::ExecActivate(const ActivateStmt& stmt) {
  DELTAMON_ASSIGN_OR_RETURN(rules::RuleId rule,
                            engine_.rules.FindRule(stmt.rule_name));
  DELTAMON_ASSIGN_OR_RETURN(std::vector<Value> args,
                            EvalGroundExprs(stmt.args));
  Tuple params{std::move(args)};
  return stmt.deactivate ? engine_.rules.Deactivate(rule, params)
                         : engine_.rules.Activate(rule, params);
}

Status Session::ExecSelect(const SelectStmt& stmt, QueryResult* out) {
  Compiler compiler(engine_, env_, *this);
  DELTAMON_ASSIGN_OR_RETURN(
      CompiledQuery query,
      compiler.CompileQuery(kInvalidRelationId, /*params=*/{},
                            stmt.query.for_each,
                            /*include_for_each_in_head=*/false,
                            stmt.query.results, stmt.query.where.get()));
  Evaluator evaluator(engine_.db, engine_.registry, EvalContext());
  evaluator.SetProfiler(active_profiler_);
  TupleSet rows;
  for (size_t i = 0; i < query.clauses.size(); ++i) {
    Clause& clause = query.clauses[i];
    // Ad-hoc clauses have no registry-assigned profile label; number them
    // so `explain analyze` keeps disjunctive branches apart.
    clause.profile_label = "select#" + std::to_string(i);
    DELTAMON_RETURN_IF_ERROR(evaluator.EvaluateClause(clause, &rows));
  }
  out->rows = SortedTuples(rows);
  return Status::OK();
}

}  // namespace deltamon::amosql
