#ifndef DELTAMON_AMOSQL_AST_H_
#define DELTAMON_AMOSQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/value.h"
#include "objectlog/ast.h"

namespace deltamon::amosql {

/// --- Expressions ----------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// An AMOSQL expression: literal, variable reference, interface variable,
/// function call, or arithmetic.
struct Expr {
  enum class Kind {
    kLiteral,       // 5000, 2.5, "abc"
    kVariable,      // i, s (query variable)
    kInterfaceVar,  // :item1 (session environment)
    kCall,          // quantity(i)
    kArith,         // a * b
  };

  Kind kind = Kind::kLiteral;
  Value literal;                       // kLiteral
  std::string name;                    // kVariable / kInterfaceVar / kCall
  std::vector<ExprPtr> args;           // kCall
  objectlog::ArithOp op = objectlog::ArithOp::kAdd;  // kArith
  ExprPtr lhs, rhs;                    // kArith
  int line = 1;

  static ExprPtr Literal(Value v, int line);
  static ExprPtr Variable(std::string name, int line);
  static ExprPtr Interface(std::string name, int line);
  static ExprPtr Call(std::string name, std::vector<ExprPtr> args, int line);
  static ExprPtr Arith(objectlog::ArithOp op, ExprPtr lhs, ExprPtr rhs,
                       int line);
};

/// --- Predicates -------------------------------------------------------------

struct Predicate;
using PredicatePtr = std::unique_ptr<Predicate>;

/// A boolean condition tree: comparisons over expressions combined with
/// and / or / not. A bare function call used as a predicate (boolean
/// function) is represented as kAtom.
struct Predicate {
  enum class Kind { kCompare, kAnd, kOr, kNot, kAtom };

  Kind kind = Kind::kCompare;
  objectlog::CompareOp cmp = objectlog::CompareOp::kEq;  // kCompare
  ExprPtr lhs, rhs;                                      // kCompare
  PredicatePtr left, right;                              // kAnd / kOr
  PredicatePtr child;                                    // kNot
  ExprPtr atom;                                          // kAtom (a kCall)
  int line = 1;

  static PredicatePtr Compare(objectlog::CompareOp op, ExprPtr lhs,
                              ExprPtr rhs, int line);
  static PredicatePtr And(PredicatePtr l, PredicatePtr r, int line);
  static PredicatePtr Or(PredicatePtr l, PredicatePtr r, int line);
  static PredicatePtr Not(PredicatePtr c, int line);
  static PredicatePtr Atom(ExprPtr call, int line);
};

/// --- Queries ----------------------------------------------------------------

/// `TYPE NAME` declaration in a for-each clause.
struct VarDecl {
  std::string type_name;
  std::string var_name;
  int line = 1;
};

/// `select <exprs> for each <decls> where <pred>`; both the for-each list
/// and the where clause are optional.
struct SelectQuery {
  std::vector<ExprPtr> results;
  std::vector<VarDecl> for_each;
  PredicatePtr where;  // may be null
  int line = 1;
};

/// --- Statements -------------------------------------------------------------

struct CreateTypeStmt {
  std::string name;
};

/// Parameter of a function or rule: type name plus optional variable name.
struct ParamDecl {
  std::string type_name;
  std::string var_name;  // may be empty for stored-function signatures
  int line = 1;
};

/// `as count|sum|min|max source(param, ...)`: an aggregate view grouped by
/// the function's parameters (§8 extension).
struct AggregateBody {
  std::string func;    // "count" | "sum" | "min" | "max"
  std::string source;  // the aggregated function
  std::vector<std::string> args;  // must be the parameter names, in order
  int line = 1;
};

struct CreateFunctionStmt {
  std::string name;
  std::vector<ParamDecl> params;
  std::vector<std::string> result_types;
  /// Engaged for derived functions ("as select ...").
  std::optional<SelectQuery> body;
  /// Engaged for aggregate views ("as sum f(x)").
  std::optional<AggregateBody> aggregate;
};

/// Rule action: a procedure call `order(i, ...)` or an update
/// `set f(args) = expr`.
struct RuleActionStmt {
  enum class Kind { kProcedureCall, kSet };
  Kind kind = Kind::kProcedureCall;
  ExprPtr call;           // kProcedureCall: a kCall expr
  ExprPtr set_target;     // kSet: a kCall expr (function being set)
  ExprPtr set_value;      // kSet
  int line = 1;
};

struct CreateRuleStmt {
  std::string name;
  std::vector<ParamDecl> params;
  /// Either a for-each clause with declared variables + predicate, or just
  /// a predicate over the rule parameters.
  std::vector<VarDecl> for_each;
  PredicatePtr condition;
  RuleActionStmt action;
  /// `as strict` / `as nervous` modifier (extension; default strict).
  bool nervous = false;
};

struct CreateInstancesStmt {
  std::string type_name;
  std::vector<std::string> interface_vars;  // names without ':'
};

/// set / add / remove f(args) = value.
struct UpdateStmt {
  enum class Kind { kSet, kAdd, kRemove };
  Kind kind = Kind::kSet;
  ExprPtr target;  // kCall expr
  ExprPtr value;
  int line = 1;
};

struct ActivateStmt {
  std::string rule_name;
  std::vector<ExprPtr> args;
  bool deactivate = false;
};

struct SelectStmt {
  SelectQuery query;
};

/// `begin;` — starts an explicit transaction: the session stops refreshing
/// its snapshot per statement and accumulates reads and buffered writes
/// until `commit;` or `abort;`. A no-op without an attached transaction
/// manager (the embedded single-session mode is always in a transaction).
struct BeginStmt {};
struct CommitStmt {};
/// `rollback;` / `abort;` — discards the transaction's buffered writes
/// (abort is the retry-friendly spelling used by network clients).
struct RollbackStmt {};

struct Statement;

/// `profile <statement>` — executes the wrapped statement and reports the
/// wall time, the delta of every obs metric it moved, and (for statements
/// that ran a check phase) the executed partial differentials.
struct ProfileStmt {
  std::unique_ptr<Statement> inner;
};

/// `show metrics [prometheus]` — dumps the global obs registry, either in
/// the native human format or in Prometheus text exposition format.
struct ShowMetricsStmt {
  bool prometheus = false;
};

/// `explain analyze ["file.json"] <statement>` — executes the wrapped
/// statement with the per-literal profiler attached, prints each clause's
/// estimated vs actual rows / selectivity / probe-vs-scan / time table,
/// records the observed selectivities into the catalog's StatsStore (so the
/// literal-ordering optimizer learns from them), and optionally writes the
/// same profile as a JSON artifact.
struct ExplainAnalyzeStmt {
  std::unique_ptr<Statement> inner;
  std::string path;  // empty → no JSON artifact
};

/// `analyze rule <name>` — evaluates the rule's monitored condition
/// relation(s) under the profiler, feeds the observed selectivities into
/// the StatsStore, and prints the per-literal table.
struct AnalyzeRuleStmt {
  std::string rule;
};

/// `trace ["file.json"] <statement>` — executes the wrapped statement with
/// a trace sink installed, writes the recorded spans as a Chrome/Perfetto
/// trace_event file, and prints the span tree.
struct TraceStmt {
  std::unique_ptr<Statement> inner;
  std::string path;  // empty → "deltamon_trace.json"
};

/// `show network [rule]` — prints the propagation network topology with
/// per-node attribution stats and its Graphviz dot rendering, optionally
/// restricted to the subgraph feeding one rule's condition.
struct ShowNetworkStmt {
  std::string rule;  // empty → the whole network
};

/// `show slow;` — prints the server's slow-statement log (statements over
/// the --slow-statement-ms threshold, with their span trees and literal
/// profiles). Empty unless a threshold is armed.
struct ShowSlowStmt {};

/// `reset metrics` — zeroes every counter/gauge/histogram in the global
/// obs registry and the propagation network's node attribution.
struct ResetMetricsStmt {};

/// `set threads N` — worker threads for propagation waves (level-
/// synchronous parallelism; results identical at any setting). 1 is the
/// serial algorithm, 0 means hardware concurrency.
struct SetThreadsStmt {
  int64_t num_threads = 1;
};

/// `set kernels on|off` — routes eligible partial differentials through the
/// batch evaluation kernels (columnar Δ-tables, build–probe hash joins,
/// semi-join pre-filters; docs/kernels.md). On by default; results are
/// identical either way, only the execution strategy (and the per-literal
/// `access` labels in profiles) changes.
struct SetKernelsStmt {
  bool on = true;
};

/// `show settings;` — prints the session-visible execution knobs
/// (threads, kernels) and their current values.
struct ShowSettingsStmt {};

/// `set slow_ms N` — slow-statement log threshold in milliseconds
/// (0 disarms capture), updating the same relaxed-atomic threshold the
/// deltamond --slow-statement-ms flag seeds.
struct SetSlowMsStmt {
  int64_t slow_ms = 0;
};

/// `set provenance on|off` — row-level firing provenance: propagation
/// waves capture delta lineage and every firing records its instances'
/// lineage trees (see `explain firing`). Off by default (lineage capture
/// evaluates differentials once per influent row; docs/observability.md
/// gives the cost model). Errors when observability is compiled out.
struct SetProvenanceStmt {
  bool on = false;
};

/// `set wave_capture on|off` — black-box recorder of check-phase waves
/// (influent Δ-sets, settings, root Δ-sets, firings), dumped with `dump
/// waves` and replayed by deltamon-replay. Errors when observability is
/// compiled out.
struct SetWaveCaptureStmt {
  bool on = false;
};

/// `dump waves "path";` — writes the captured waves as a
/// `deltamon.wave.v1` JSON file for deltamon-replay.
struct DumpWavesStmt {
  std::string path;
};

/// `explain firing <rule> [n];` — prints the lineage trees of the last
/// (or n-th most recent) recorded firing of `rule`: which base-relation
/// Δ-rows each condition instance was derived from, through which partial
/// differentials, stamped with the trace id and commit version.
/// An optional leading string literal (mirroring `trace` / `explain
/// analyze`) additionally writes the firing record as a JSON artifact.
struct ExplainFiringStmt {
  std::string path;  ///< empty → no JSON artifact
  std::string rule;
  int64_t nth = 1;  ///< 1 = most recent recorded firing of the rule
};

/// `show provenance;` — summarizes the firing-provenance ring (one line
/// per recorded firing).
struct ShowProvenanceStmt {};

/// A parsed statement (tagged union via variant).
struct Statement {
  std::variant<CreateTypeStmt, CreateFunctionStmt, CreateRuleStmt,
               CreateInstancesStmt, UpdateStmt, ActivateStmt, SelectStmt,
               BeginStmt, CommitStmt, RollbackStmt, ProfileStmt,
               ShowMetricsStmt,
               TraceStmt, ShowNetworkStmt, ShowSlowStmt, ResetMetricsStmt,
               SetThreadsStmt, SetKernelsStmt, ShowSettingsStmt,
               SetSlowMsStmt, SetProvenanceStmt, SetWaveCaptureStmt,
               DumpWavesStmt, ExplainFiringStmt, ShowProvenanceStmt,
               ExplainAnalyzeStmt, AnalyzeRuleStmt>
      node;
  int line = 1;
};

}  // namespace deltamon::amosql

#endif  // DELTAMON_AMOSQL_AST_H_
